//! The per-cell training engine — the four-phase iteration every driver
//! executes (gather → mutate → train → update genomes).

use crate::config::{AdversaryStrategy, LossMode, TrainConfig};
use crate::individual::{Individual, SubPopulation};
use crate::mixture::{EnsembleModel, MixtureWeights};
use crate::profiling::{Profiler, Routine};
use crate::resume::CellState;
use crate::snapshot::CellSnapshot;
use lipiz_data::BatchLoader;
use lipiz_nn::{
    gan, loss, Adam, Discriminator, GanLoss, Generator, NetworkConfig, TrainWorkspace,
};
use lipiz_telemetry::{SpanKind, Telemetry};
use lipiz_tensor::{Matrix, Pool, Rng64};
use std::sync::Arc;

/// Optional external scorer for mixture evolution (lower is better). The
/// drivers plug a FID-based scorer in here; without one the engine falls
/// back to a discriminator-loss proxy.
pub type MixtureScorer = Arc<dyn Fn(&Matrix) -> f64 + Send + Sync>;

/// One grid cell's complete training state.
///
/// The engine is deterministic: given the same [`TrainConfig`], cell index,
/// dataset and per-iteration neighbor snapshots, it produces bit-identical
/// genomes. The sequential baseline, the threaded distributed runtime and
/// the virtual-time cluster simulator all drive this same struct — the
/// integration suite asserts their outputs are equal.
pub struct CellEngine {
    cell_index: usize,
    cfg: TrainConfig,
    net_cfg: NetworkConfig,
    gen_pop: SubPopulation,
    disc_pop: SubPopulation,
    /// Working center networks (always mirror the center genomes).
    gen: Generator,
    disc: Discriminator,
    /// Scratch networks for evaluating imported genomes.
    scratch_gen: Generator,
    scratch_disc: Discriminator,
    adam_g: Adam,
    adam_d: Adam,
    mixture: MixtureWeights,
    loader: BatchLoader,
    eval_real: Matrix,
    rng_mutate: Rng64,
    rng_train: Rng64,
    rng_mixture: Rng64,
    scorer: Option<MixtureScorer>,
    batch_counter: u64,
    iteration: usize,
    /// Intra-rank worker pool: every matrix product of the iteration —
    /// generation, evaluation, and both backward passes — fans out here.
    pool: Pool,
    /// Recycled per-cell scratch. Together with the engine's workspace, a
    /// steady-state iteration performs zero heap allocations — asserted by
    /// the counting-allocator integration test.
    scratch: CellScratch,
}

/// Every recycled buffer of one cell's training iteration, grouped so the
/// constructors initialize them in exactly one place.
struct CellScratch {
    /// Reusable step workspace (forward caches, loss gradients, delta
    /// ping-pong, gradient accumulators).
    ws: TrainWorkspace,
    /// Latent batches (training and evaluation sizes share the buffer).
    z: Matrix,
    /// Generated fakes for discriminator steps.
    fake: Matrix,
    /// Current real mini-batch.
    real: Matrix,
    /// Forward-pass ping-pong scratch for `forward_into`.
    fwd: Matrix,
    /// Per-member fake batches of the update phase.
    fakes: Vec<Matrix>,
    /// Update-phase logits over the real evaluation batch.
    logits_real: Matrix,
    /// Update-phase logits over one fake batch / the blended batch.
    logits_fake: Matrix,
    /// Mixture-ES blended evaluation batch.
    blended: Matrix,
    /// Per-member fitness accumulators.
    g_fit: Vec<f64>,
    d_fit: Vec<f64>,
    /// Tournament draw buffer.
    tourney: Vec<usize>,
    /// Mixture-ES candidate buffer.
    mixture: MixtureWeights,
}

impl CellScratch {
    /// Empty scratch for a cell with `subpop` sub-population members;
    /// every buffer sizes itself lazily on first use.
    fn new(subpop: usize) -> Self {
        Self {
            ws: TrainWorkspace::default(),
            z: Matrix::default(),
            fake: Matrix::default(),
            real: Matrix::default(),
            fwd: Matrix::default(),
            fakes: Vec::new(),
            logits_real: Matrix::default(),
            logits_fake: Matrix::default(),
            blended: Matrix::default(),
            g_fit: Vec::new(),
            d_fit: Vec::new(),
            tourney: Vec::new(),
            mixture: MixtureWeights::uniform(subpop),
        }
    }
}

impl CellEngine {
    /// Build the engine for grid cell `cell_index` over its local dataset
    /// (row-per-sample, values in `[-1, 1]`).
    ///
    /// # Panics
    /// Panics if the dataset width does not match the configured data
    /// dimension, or the dataset is smaller than the eval batch.
    pub fn new(cell_index: usize, cfg: &TrainConfig, data: Matrix) -> Self {
        let pool = Pool::new(cfg.training.workers_per_cell);
        Self::with_pool(cell_index, cfg, data, pool)
    }

    /// Like [`CellEngine::new`] but sharing an existing worker pool —
    /// drivers that host several engines in one process (the sequential
    /// baseline, the virtual cluster) hand every engine a clone of one pool
    /// so the resident threads are spawned once.
    pub fn with_pool(cell_index: usize, cfg: &TrainConfig, data: Matrix, pool: Pool) -> Self {
        let net_cfg = cfg.network.to_network_config();
        assert_eq!(data.cols(), net_cfg.data_dim, "dataset width vs network data_dim");
        assert!(data.rows() >= cfg.training.eval_batch, "dataset smaller than eval batch");
        let mut root = Rng64::seed_from(cfg.cell_seed(cell_index));
        let mut rng_init = root.derive(0);
        let rng_mutate = root.derive(1);
        let rng_train = root.derive(2);
        let rng_mixture = root.derive(3);
        let loader_seed_rng = root.derive(4);

        let gen = Generator::new(&net_cfg, &mut rng_init);
        let disc = Discriminator::new(&net_cfg, &mut rng_init);
        let scratch_gen = gen.clone();
        let scratch_disc = disc.clone();
        let adam_g = Adam::new(gen.net.param_count());
        let adam_d = Adam::new(disc.net.param_count());

        let initial_loss = match cfg.mutation.loss_mode {
            LossMode::Fixed(l) => l.into(),
            LossMode::Mutate => GanLoss::Heuristic,
        };
        let imports = cfg.subpopulation_size() - 1;
        let gen_center =
            Individual::new(gen.net.genome().to_vec(), cfg.mutation.initial_lr, initial_loss);
        let disc_center = Individual::new(
            disc.net.genome().to_vec(),
            cfg.mutation.initial_lr,
            GanLoss::Heuristic,
        );
        let gen_pop = SubPopulation::bootstrap(gen_center, imports);
        let disc_pop = SubPopulation::bootstrap(disc_center, imports);
        let mixture = MixtureWeights::uniform(gen_pop.len());

        let eval_real = data.slice_rows(0, cfg.training.eval_batch);
        let mut loader_seed = loader_seed_rng;
        let loader = BatchLoader::new(data, cfg.training.batch_size, loader_seed.next_u64());
        let subpop = gen_pop.len();

        Self {
            cell_index,
            cfg: cfg.clone(),
            net_cfg,
            gen_pop,
            disc_pop,
            gen,
            disc,
            scratch_gen,
            scratch_disc,
            adam_g,
            adam_d,
            mixture,
            loader,
            eval_real,
            rng_mutate,
            rng_train,
            rng_mixture,
            scorer: None,
            batch_counter: 0,
            iteration: 0,
            pool,
            scratch: CellScratch::new(subpop),
        }
    }

    /// Rebuild an engine from a captured [`CellState`] — the
    /// checkpoint-restore path. The dataset is supplied exactly as in
    /// [`CellEngine::with_pool`] (every rank re-derives it from the config);
    /// everything else comes from the state. A restored engine continues
    /// the run bit-identically to the engine the state was captured from.
    ///
    /// # Panics
    /// Panics if the state fails [`CellState::validate`] against `cfg`, or
    /// the dataset shape disagrees with the configuration — a corrupt or
    /// mismatched checkpoint must never restore partially.
    pub fn from_state(cfg: &TrainConfig, data: Matrix, pool: Pool, state: &CellState) -> Self {
        state.validate(cfg).expect("cell state validates against config");
        let net_cfg = cfg.network.to_network_config();
        assert_eq!(data.cols(), net_cfg.data_dim, "dataset width vs network data_dim");
        assert!(data.rows() >= cfg.training.eval_batch, "dataset smaller than eval batch");

        // Materialize network shells, then overwrite with the center
        // genomes (at an iteration boundary the working nets always mirror
        // the centers — `update_phase` re-syncs them before it returns).
        let mut shell_rng = Rng64::seed_from(0);
        let mut gen = Generator::new(&net_cfg, &mut shell_rng);
        let mut disc = Discriminator::new(&net_cfg, &mut shell_rng);
        gen.net.load_genome(&state.gen_members[0].genome);
        disc.net.load_genome(&state.disc_members[0].genome);
        let scratch_gen = gen.clone();
        let scratch_disc = disc.clone();

        let eval_real = data.slice_rows(0, cfg.training.eval_batch);
        let loader =
            BatchLoader::from_state(data, cfg.training.batch_size, state.loader.clone());
        let subpop = state.gen_members.len();

        Self {
            cell_index: state.cell,
            cfg: cfg.clone(),
            net_cfg,
            gen_pop: SubPopulation::from_members(state.gen_members.clone()),
            disc_pop: SubPopulation::from_members(state.disc_members.clone()),
            gen,
            disc,
            scratch_gen,
            scratch_disc,
            adam_g: Adam::from_state(state.adam_g.clone()),
            adam_d: Adam::from_state(state.adam_d.clone()),
            mixture: MixtureWeights::from_normalized(&state.mixture),
            loader,
            eval_real,
            rng_mutate: Rng64::from_state(state.rng_mutate),
            rng_train: Rng64::from_state(state.rng_train),
            rng_mixture: Rng64::from_state(state.rng_mixture),
            scorer: None,
            batch_counter: state.batch_counter,
            iteration: state.iteration,
            pool,
            scratch: CellScratch::new(subpop),
        }
    }

    /// Capture the engine's complete training state (see [`CellState`]).
    /// Meant to be called at an iteration boundary; syncs the working
    /// center networks into the population first, exactly like
    /// [`CellEngine::snapshot`].
    pub fn capture_state(&mut self) -> CellState {
        self.sync_center_genomes();
        CellState {
            cell: self.cell_index,
            iteration: self.iteration,
            batch_counter: self.batch_counter,
            gen_members: self.gen_pop.members().to_vec(),
            disc_members: self.disc_pop.members().to_vec(),
            mixture: self.mixture.weights().to_vec(),
            adam_g: self.adam_g.state(),
            adam_d: self.adam_d.state(),
            rng_mutate: self.rng_mutate.state(),
            rng_train: self.rng_train.state(),
            rng_mixture: self.rng_mixture.state(),
            loader: self.loader.state(),
            exchange_frame: Vec::new(),
        }
    }

    /// Capture into an existing [`CellState`], reusing its buffers — the
    /// double-buffered fast path of the async checkpoint writer: the
    /// training thread swaps between two recycled states, so steady-state
    /// capture performs no genome-sized allocations.
    ///
    /// `state.exchange_frame` belongs to the driver, not the engine: the
    /// caller fills (or clears) it after capture, because only the driver
    /// knows which gathered frame the next iteration will consume.
    pub fn capture_state_into(&mut self, state: &mut CellState) {
        self.sync_center_genomes();
        state.cell = self.cell_index;
        state.iteration = self.iteration;
        state.batch_counter = self.batch_counter;
        clone_members_into(self.gen_pop.members(), &mut state.gen_members);
        clone_members_into(self.disc_pop.members(), &mut state.disc_members);
        state.mixture.clear();
        state.mixture.extend_from_slice(self.mixture.weights());
        self.adam_g.state_into(&mut state.adam_g);
        self.adam_d.state_into(&mut state.adam_d);
        state.rng_mutate = self.rng_mutate.state();
        state.rng_train = self.rng_train.state();
        state.rng_mixture = self.rng_mixture.state();
        self.loader.state_into(&mut state.loader);
    }

    /// Attach an external mixture scorer (e.g. FID against real features).
    pub fn set_mixture_scorer(&mut self, scorer: MixtureScorer) {
        self.scorer = Some(scorer);
    }

    /// This cell's flat grid index.
    pub fn cell_index(&self) -> usize {
        self.cell_index
    }

    /// Iterations completed so far.
    pub fn iterations_done(&self) -> usize {
        self.iteration
    }

    /// Current mixture weights.
    pub fn mixture(&self) -> &MixtureWeights {
        &self.mixture
    }

    /// Generator sub-population (read access for drivers/tests).
    pub fn gen_population(&self) -> &SubPopulation {
        &self.gen_pop
    }

    /// Discriminator sub-population.
    pub fn disc_population(&self) -> &SubPopulation {
        &self.disc_pop
    }

    /// Snapshot of the current center pair for migration to neighbors.
    pub fn snapshot(&mut self) -> CellSnapshot {
        let mut snap = CellSnapshot::empty();
        self.snapshot_into(&mut snap);
        snap
    }

    /// [`CellEngine::snapshot`] into a recycled snapshot — the
    /// zero-allocation path the drivers use every iteration (genome buffers
    /// are reused in place).
    pub fn snapshot_into(&mut self, out: &mut CellSnapshot) {
        self.sync_center_genomes();
        let g = self.gen_pop.center();
        let d = self.disc_pop.center();
        out.cell = self.cell_index;
        out.gen_genome.clear();
        out.gen_genome.extend_from_slice(&g.genome);
        out.gen_lr = g.lr;
        out.gen_loss = g.loss;
        out.gen_fitness = g.fitness;
        out.disc_genome.clear();
        out.disc_genome.extend_from_slice(&d.genome);
        out.disc_lr = d.lr;
        out.disc_fitness = d.fitness;
    }

    /// Run one full training iteration given this round's neighbor
    /// snapshots (in neighbor-slot order). Timing lands in `profiler`
    /// under the Table IV routine names.
    pub fn run_iteration(&mut self, neighbors: &[CellSnapshot], profiler: &mut Profiler) {
        self.run_iteration_with(neighbors, profiler, &mut Telemetry::disabled());
    }

    /// [`CellEngine::run_iteration`] with telemetry: each Table IV phase
    /// runs under a telemetry span whose measured duration also feeds
    /// `profiler`, so all drivers time the iteration through one code
    /// path. With a disabled recorder this is exactly `run_iteration`
    /// (the span API still measures, records nothing, allocates nothing).
    pub fn run_iteration_with(
        &mut self,
        neighbors: &[CellSnapshot],
        profiler: &mut Profiler,
        tel: &mut Telemetry,
    ) {
        let cell = self.cell_index as u32;
        let iter = self.iteration as u32;
        let phases: [(SpanKind, Routine); 4] = [
            (SpanKind::Gather, Routine::Gather),
            (SpanKind::Mutate, Routine::Mutate),
            (SpanKind::Train, Routine::Train),
            (SpanKind::Update, Routine::UpdateGenomes),
        ];
        for (span, routine) in phases {
            let start = tel.begin(span, cell, iter);
            match routine {
                Routine::Gather => self.ingest_neighbors(neighbors),
                Routine::Mutate => self.mutate_phase(),
                Routine::Train => self.train_phase(),
                Routine::UpdateGenomes => self.update_phase(),
                Routine::Other => unreachable!(),
            }
            profiler.record(routine, tel.end(span, cell, iter, start));
        }
        tel.metrics.iterations.inc();
        self.iteration += 1;
    }

    /// Advance the iteration counter — for drivers that invoke the phases
    /// individually (the virtual-time simulator times each phase itself)
    /// instead of through [`CellEngine::run_iteration`]. Must be called
    /// exactly once per gather/mutate/train/update cycle to keep the
    /// mixture-evolution schedule aligned with the other drivers.
    pub fn advance_iteration(&mut self) {
        self.iteration += 1;
    }

    // ---- phase 1: gather --------------------------------------------------

    /// Refresh import slots with the latest neighbor centers.
    ///
    /// # Panics
    /// Panics if the number of snapshots does not match the neighborhood.
    pub fn ingest_neighbors(&mut self, neighbors: &[CellSnapshot]) {
        assert_eq!(
            neighbors.len(),
            self.gen_pop.len() - 1,
            "snapshot count vs neighborhood size"
        );
        for (slot, snap) in neighbors.iter().enumerate() {
            self.gen_pop.assign_import(
                slot + 1,
                &snap.gen_genome,
                snap.gen_lr,
                snap.gen_loss,
                snap.gen_fitness,
            );
            self.disc_pop.assign_import(
                slot + 1,
                &snap.disc_genome,
                snap.disc_lr,
                GanLoss::Heuristic,
                snap.disc_fitness,
            );
        }
    }

    // ---- phase 2: mutate --------------------------------------------------

    /// Gaussian learning-rate mutation (Table I) plus, in Mustangs mode,
    /// loss-function mutation.
    pub fn mutate_phase(&mut self) {
        let m = &self.cfg.mutation;
        if self.rng_mutate.chance(m.probability) {
            let delta = self.rng_mutate.normal(0.0, m.rate);
            let c = self.gen_pop.center_mut();
            c.lr = (c.lr + delta).clamp(1e-7, 1e-1);
        }
        if self.rng_mutate.chance(m.probability) {
            let delta = self.rng_mutate.normal(0.0, m.rate);
            let c = self.disc_pop.center_mut();
            c.lr = (c.lr + delta).clamp(1e-7, 1e-1);
        }
        if matches!(m.loss_mode, LossMode::Mutate) {
            let pick = GanLoss::ALL[self.rng_mutate.below(GanLoss::ALL.len())];
            self.gen_pop.center_mut().loss = pick;
        }
    }

    // ---- phase 3: train ---------------------------------------------------

    /// Mini-batch adversarial training of the center pair against
    /// sub-population adversaries.
    pub fn train_phase(&mut self) {
        for _ in 0..self.cfg.training.batches_per_iteration {
            // The real batch lives in a recycled buffer; it is moved out of
            // `self` for the duration of the steps (a pointer swap, not a
            // copy) so the step methods can borrow the engine mutably.
            self.loader.next_batch_into(&mut self.scratch.real);
            let real = std::mem::take(&mut self.scratch.real);
            match self.cfg.coevolution.adversary {
                AdversaryStrategy::Tournament(k) => {
                    let d_idx = self.disc_pop.tournament_with(
                        &mut self.rng_train,
                        k,
                        &mut self.scratch.tourney,
                    );
                    self.generator_step(d_idx);
                    if self.should_train_disc() {
                        let g_idx = self.gen_pop.tournament_with(
                            &mut self.rng_train,
                            k,
                            &mut self.scratch.tourney,
                        );
                        self.discriminator_step(g_idx, &real);
                    }
                }
                AdversaryStrategy::All => {
                    for d_idx in 0..self.disc_pop.len() {
                        self.generator_step(d_idx);
                    }
                    if self.should_train_disc() {
                        for g_idx in 0..self.gen_pop.len() {
                            self.discriminator_step(g_idx, &real);
                        }
                    }
                }
            }
            self.scratch.real = real;
            self.batch_counter += 1;
        }
    }

    /// Paper: "Skip N disc. steps 1" — the discriminator trains on every
    /// `1 + skip`-th batch.
    fn should_train_disc(&self) -> bool {
        let period = 1 + self.cfg.training.skip_disc_steps as u64;
        self.batch_counter.is_multiple_of(period)
    }

    /// One generator Adam step against discriminator sub-population member
    /// `d_idx`.
    fn generator_step(&mut self, d_idx: usize) {
        gan::latent_batch_into(
            &mut self.rng_train,
            self.cfg.training.batch_size,
            self.net_cfg.latent_dim,
            &mut self.scratch.z,
        );
        let (lr, kind) = {
            let c = self.gen_pop.center();
            (c.lr, c.loss)
        };
        let adversary: &Discriminator = if d_idx == 0 {
            &self.disc
        } else {
            self.scratch_disc.net.load_genome(&self.disc_pop.members()[d_idx].genome);
            &self.scratch_disc
        };
        gan::train_generator_step_ws(
            &mut self.gen,
            adversary,
            &mut self.adam_g,
            &self.scratch.z,
            lr,
            kind,
            &mut self.scratch.ws,
            &self.pool,
        );
    }

    /// One discriminator Adam step against generator sub-population member
    /// `g_idx` using a real batch.
    fn discriminator_step(&mut self, g_idx: usize, real: &Matrix) {
        gan::latent_batch_into(
            &mut self.rng_train,
            self.cfg.training.batch_size,
            self.net_cfg.latent_dim,
            &mut self.scratch.z,
        );
        if g_idx == 0 {
            self.gen.generate_into(
                &self.scratch.z,
                &mut self.scratch.fake,
                &mut self.scratch.fwd,
                &self.pool,
            );
        } else {
            self.scratch_gen.net.load_genome(&self.gen_pop.members()[g_idx].genome);
            self.scratch_gen.generate_into(
                &self.scratch.z,
                &mut self.scratch.fake,
                &mut self.scratch.fwd,
                &self.pool,
            );
        }
        let lr = self.disc_pop.center().lr;
        gan::train_discriminator_step_ws(
            &mut self.disc,
            &mut self.adam_d,
            real,
            &self.scratch.fake,
            lr,
            &mut self.scratch.ws,
            &self.pool,
        );
    }

    // ---- phase 4: update genomes -------------------------------------------

    /// Re-evaluate every individual against the opposing sub-population,
    /// promote the best to center, and periodically evolve the mixture.
    #[allow(clippy::needless_range_loop)] // index couples two parallel arrays
    pub fn update_phase(&mut self) {
        self.sync_center_genomes();
        let s = self.gen_pop.len();
        gan::latent_batch_into(
            &mut self.rng_train,
            self.cfg.training.eval_batch,
            self.net_cfg.latent_dim,
            &mut self.scratch.z,
        );

        // Generate each component's fake batch once (recycled buffers).
        self.scratch.fakes.resize_with(s, Matrix::default);
        for i in 0..s {
            self.scratch_gen.net.load_genome(&self.gen_pop.members()[i].genome);
            self.scratch_gen.generate_into(
                &self.scratch.z,
                &mut self.scratch.fakes[i],
                &mut self.scratch.fwd,
                &self.pool,
            );
        }

        // Pairwise logits: discriminator j scores real batch + all fakes.
        self.scratch.g_fit.clear();
        self.scratch.g_fit.resize(s, 0.0);
        self.scratch.d_fit.clear();
        self.scratch.d_fit.resize(s, 0.0);
        for j in 0..s {
            self.scratch_disc.net.load_genome(&self.disc_pop.members()[j].genome);
            self.scratch_disc.logits_into(
                &self.eval_real,
                &mut self.scratch.logits_real,
                &mut self.scratch.fwd,
                &self.pool,
            );
            for i in 0..s {
                self.scratch_disc.logits_into(
                    &self.scratch.fakes[i],
                    &mut self.scratch.logits_fake,
                    &mut self.scratch.fwd,
                    &self.pool,
                );
                let g_loss = loss::g_loss_value(GanLoss::Heuristic, &self.scratch.logits_fake);
                let d_loss = loss::d_bce_loss_value(
                    &self.scratch.logits_real,
                    &self.scratch.logits_fake,
                );
                self.scratch.g_fit[i] += g_loss as f64 / s as f64;
                self.scratch.d_fit[j] += d_loss as f64 / s as f64;
            }
        }
        for i in 0..s {
            self.gen_pop.members_mut()[i].fitness = self.scratch.g_fit[i];
            self.disc_pop.members_mut()[i].fitness = self.scratch.d_fit[i];
        }

        // Replacement: promote the sub-population best to the center slot.
        let g_changed = self.gen_pop.promote_best();
        let d_changed = self.disc_pop.promote_best();
        if g_changed {
            self.gen.net.load_genome(&self.gen_pop.center().genome);
            self.adam_g.reset();
        }
        if d_changed {
            self.disc.net.load_genome(&self.disc_pop.center().genome);
            self.adam_d.reset();
        }

        // Mixture-weight evolution ((1+1)-ES, Table I scale 0.01).
        let every = self.cfg.coevolution.mixture_every;
        if every > 0 && (self.iteration + 1).is_multiple_of(every) {
            self.evolve_mixture();
        }
    }

    /// One ES step on the mixture weights over the update phase's fake
    /// batches. With an external scorer the candidate mixtures are scored
    /// by it (e.g. FID); otherwise by how well the blended batch fools the
    /// center discriminator.
    fn evolve_mixture(&mut self) {
        let sigma = self.cfg.coevolution.mixture_sigma;
        let n = self.scratch.fakes[0].rows();
        let cols = self.scratch.fakes[0].cols();
        // Pre-draw one component assignment stream per candidate scoring so
        // both candidates see the same randomness (common random numbers).
        let assignment_seed = self.rng_mixture.derive(self.iteration as u64);
        let scorer = self.scorer.clone();
        let fakes = &self.scratch.fakes;
        let disc = &self.disc;
        let pool = &self.pool;
        let blended = &mut self.scratch.blended;
        let logits = &mut self.scratch.logits_fake;
        let fwd_scratch = &mut self.scratch.fwd;
        let score = |w: &MixtureWeights| -> f64 {
            let mut rng = assignment_seed.clone();
            blended.resize_buffer(n, cols);
            for r in 0..n {
                let c = w.sample_component(&mut rng);
                blended.row_mut(r).copy_from_slice(fakes[c].row(r));
            }
            match &scorer {
                Some(s) => s(blended),
                None => {
                    disc.logits_into(blended, logits, fwd_scratch, pool);
                    loss::g_loss_value(GanLoss::Heuristic, logits) as f64
                }
            }
        };
        self.mixture.es_step_with(
            sigma,
            &mut self.rng_mixture,
            score,
            &mut self.scratch.mixture,
        );
    }

    /// Copy the working center networks back into the population slots
    /// (recycling the center genome buffers — `genome()` is a zero-copy
    /// borrow of the contiguous parameter storage).
    fn sync_center_genomes(&mut self) {
        let c = self.gen_pop.center_mut();
        c.genome.clear();
        c.genome.extend_from_slice(self.gen.net.genome());
        let c = self.disc_pop.center_mut();
        c.genome.clear();
        c.genome.extend_from_slice(self.disc.net.genome());
    }

    /// The cell's final generative model: its generator sub-population
    /// under the evolved mixture weights.
    pub fn ensemble(&mut self) -> EnsembleModel {
        self.sync_center_genomes();
        let genomes: Vec<Vec<f32>> =
            self.gen_pop.members().iter().map(|m| m.genome.clone()).collect();
        EnsembleModel::new(self.net_cfg, genomes, self.mixture.clone())
    }

    /// Sample images from the center generator only (diagnostics).
    pub fn sample_center(&self, n: usize, rng: &mut Rng64) -> Matrix {
        self.gen.sample(n, rng)
    }

    /// Best (lowest) generator fitness currently in the sub-population.
    pub fn best_gen_fitness(&self) -> f64 {
        self.gen_pop.members()[self.gen_pop.best_index()].fitness
    }
}

/// Clone a member slice into a recycled buffer, reusing genome capacity.
fn clone_members_into(src: &[Individual], dst: &mut Vec<Individual>) {
    dst.truncate(src.len());
    for (i, m) in src.iter().enumerate() {
        match dst.get_mut(i) {
            Some(slot) => {
                slot.genome.clear();
                slot.genome.extend_from_slice(&m.genome);
                slot.lr = m.lr;
                slot.loss = m.loss;
                slot.fitness = m.fitness;
            }
            None => dst.push(m.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipiz_data::SynthDigits;

    fn smoke_engine(seed_offset: u64) -> CellEngine {
        let mut cfg = TrainConfig::smoke(2);
        cfg.seed += seed_offset;
        let data = toy_data(&cfg);
        CellEngine::new(0, &cfg, data)
    }

    fn toy_data(cfg: &TrainConfig) -> Matrix {
        // Deterministic synthetic data with the configured dimensionality.
        let mut rng = Rng64::seed_from(cfg.training.data_seed);
        rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
    }

    fn neighbor_snaps(engine: &mut CellEngine, n: usize) -> Vec<CellSnapshot> {
        (0..n).map(|_| engine.snapshot()).collect()
    }

    #[test]
    fn engine_construction_invariants() {
        let e = smoke_engine(0);
        assert_eq!(e.gen_population().len(), 5);
        assert_eq!(e.disc_population().len(), 5);
        assert_eq!(e.mixture().len(), 5);
        assert_eq!(e.iterations_done(), 0);
    }

    #[test]
    fn iteration_advances_and_stays_finite() {
        let mut e = smoke_engine(0);
        let snaps = neighbor_snaps(&mut e, 4);
        let mut prof = Profiler::new();
        e.run_iteration(&snaps, &mut prof);
        assert_eq!(e.iterations_done(), 1);
        assert!(e.gen.net.all_finite(), "generator diverged");
        assert!(e.disc.net.all_finite(), "discriminator diverged");
        // All four phases recorded time.
        for r in [Routine::Gather, Routine::Mutate, Routine::Train, Routine::UpdateGenomes] {
            assert_eq!(prof.calls(r), 1, "{r:?} not recorded");
        }
    }

    #[test]
    fn multithreaded_engine_is_bit_identical_to_serial() {
        // The intra-rank pool must never change results — only wall-clock.
        // Run the full four-phase iteration at several worker counts and
        // require byte-identical snapshots.
        let run_with = |workers: usize| {
            let cfg = TrainConfig::smoke(2).with_workers(workers);
            let data = toy_data(&cfg);
            // Uncapped pool: the chunked kernel paths must be exercised
            // even when the test host has fewer cores than `workers`.
            let mut e = CellEngine::with_pool(0, &cfg, data, Pool::uncapped(workers));
            let snaps = neighbor_snaps(&mut e, 4);
            let mut prof = Profiler::new();
            e.run_iteration(&snaps, &mut prof);
            e.run_iteration(&snaps, &mut prof);
            e.snapshot()
        };
        let serial = run_with(1);
        for workers in [2, 3, 4] {
            assert_eq!(run_with(workers), serial, "drift at {workers} workers");
        }
    }

    #[test]
    fn engine_is_deterministic() {
        let run = || {
            let mut e = smoke_engine(0);
            let snaps = neighbor_snaps(&mut e, 4);
            let mut prof = Profiler::new();
            e.run_iteration(&snaps, &mut prof);
            e.run_iteration(&snaps, &mut prof);
            e.snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "two identical runs diverged");
    }

    #[test]
    fn different_seeds_diverge() {
        let snap_of = |off: u64| {
            let mut e = smoke_engine(off);
            let snaps = neighbor_snaps(&mut e, 4);
            let mut prof = Profiler::new();
            e.run_iteration(&snaps, &mut prof);
            e.snapshot()
        };
        assert_ne!(snap_of(0).gen_genome, snap_of(1).gen_genome);
    }

    #[test]
    fn training_changes_the_center_genome() {
        let mut e = smoke_engine(0);
        let before = e.snapshot().gen_genome;
        let snaps = neighbor_snaps(&mut e, 4);
        let mut prof = Profiler::new();
        e.run_iteration(&snaps, &mut prof);
        let after = e.snapshot().gen_genome;
        assert_ne!(before, after, "training was a no-op");
    }

    #[test]
    fn fitter_import_takes_over_the_center() {
        let mut e = smoke_engine(0);
        // Train a second engine for several iterations to get a genuinely
        // different, trained genome.
        let mut donor = smoke_engine(7);
        let donor_snaps = neighbor_snaps(&mut donor, 4);
        let mut prof = Profiler::new();
        for _ in 0..3 {
            donor.run_iteration(&donor_snaps, &mut prof);
        }
        let donor_snap = donor.snapshot();
        // Feed the donor as all four neighbors; if it evaluates better it
        // must be promoted to center.
        let snaps = vec![donor_snap.clone(); 4];
        e.run_iteration(&snaps, &mut prof);
        let center = e.gen_population().center();
        let donor_fit = e.gen_population().members()[1].fitness;
        assert!(
            center.fitness <= donor_fit + 1e-12,
            "center fitness {} worse than import {}",
            center.fitness,
            donor_fit
        );
    }

    #[test]
    fn ingest_requires_full_neighborhood() {
        let mut e = smoke_engine(0);
        let snaps = neighbor_snaps(&mut e, 2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.ingest_neighbors(&snaps)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn mutation_perturbs_learning_rate_over_time() {
        let mut e = smoke_engine(0);
        let lr0 = e.gen_population().center().lr;
        for _ in 0..32 {
            e.mutate_phase();
        }
        let lr = e.gen_population().center().lr;
        assert_ne!(lr, lr0, "lr never mutated in 32 draws at p=0.5");
        assert!(lr > 0.0, "lr must stay positive");
    }

    #[test]
    fn mustangs_mode_mutates_loss() {
        let mut cfg = TrainConfig::smoke(2).with_mustangs();
        cfg.seed = 5;
        let data = toy_data(&cfg);
        let mut e = CellEngine::new(0, &cfg, data);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            e.mutate_phase();
            seen.insert(e.gen_population().center().loss);
        }
        assert!(seen.len() >= 2, "loss never mutated across 64 draws: {seen:?}");
    }

    #[test]
    fn fixed_mode_keeps_loss() {
        let mut e = smoke_engine(0);
        for _ in 0..32 {
            e.mutate_phase();
        }
        assert_eq!(e.gen_population().center().loss, GanLoss::Heuristic);
    }

    #[test]
    fn ensemble_matches_subpopulation() {
        let mut e = smoke_engine(0);
        let model = e.ensemble();
        assert_eq!(model.components(), 5);
        let mut rng = Rng64::seed_from(9);
        let samples = model.sample(6, &mut rng);
        assert_eq!(samples.shape(), (6, 16));
    }

    #[test]
    fn disc_skip_schedule() {
        // skip = 1 ⇒ D trains on batches 0, 2, 4, ...
        let mut e = smoke_engine(0);
        assert!(e.should_train_disc());
        e.batch_counter = 1;
        assert!(!e.should_train_disc());
        e.batch_counter = 2;
        assert!(e.should_train_disc());
        // skip = 0 ⇒ always train.
        e.cfg.training.skip_disc_steps = 0;
        e.batch_counter = 1;
        assert!(e.should_train_disc());
    }

    #[test]
    fn snapshot_round_trips_through_ingest() {
        let mut a = smoke_engine(0);
        let mut b = smoke_engine(3);
        let snap_a = a.snapshot();
        let snaps = vec![snap_a.clone(); 4];
        b.ingest_neighbors(&snaps);
        assert_eq!(b.gen_population().members()[1].genome, snap_a.gen_genome);
        assert_eq!(b.disc_population().members()[4].genome, snap_a.disc_genome);
    }

    #[test]
    fn capture_restore_resumes_bit_identically() {
        // The tentpole invariant at engine level: run k iterations, capture,
        // restore into a fresh engine over re-derived data, run the rest —
        // the restored engine's trajectory must be byte-identical to the
        // uninterrupted one's.
        let cfg = TrainConfig::smoke(2);
        let make_engine = || CellEngine::new(0, &cfg, toy_data(&cfg));
        let mut prof = Profiler::new();

        // Uninterrupted reference: 4 iterations against a fixed donor snap.
        let mut donor = {
            let mut e = CellEngine::new(0, &cfg, toy_data(&cfg));
            e.snapshot()
        };
        donor.cell = 1;
        let snaps = vec![donor; 4];
        let mut reference = make_engine();
        for _ in 0..4 {
            reference.run_iteration(&snaps, &mut prof);
        }

        // Interrupted run: 2 iterations, capture, restore, 2 more.
        let mut first_half = make_engine();
        first_half.run_iteration(&snaps, &mut prof);
        first_half.run_iteration(&snaps, &mut prof);
        let state = first_half.capture_state();
        drop(first_half);
        let mut resumed = CellEngine::from_state(&cfg, toy_data(&cfg), Pool::new(1), &state);
        assert_eq!(resumed.iterations_done(), 2);
        resumed.run_iteration(&snaps, &mut prof);
        resumed.run_iteration(&snaps, &mut prof);

        // Snapshots (genomes, lrs, fitness) and final states must agree
        // bit-for-bit.
        assert_eq!(resumed.snapshot(), reference.snapshot());
        assert_eq!(resumed.capture_state(), reference.capture_state());
        assert_eq!(resumed.ensemble(), reference.ensemble());
    }

    #[test]
    fn capture_into_reuses_buffers_and_matches_fresh_capture() {
        let mut e = smoke_engine(0);
        let snaps = neighbor_snaps(&mut e, 4);
        let mut prof = Profiler::new();
        e.run_iteration(&snaps, &mut prof);
        let mut recycled = e.capture_state();
        let genome_ptr = recycled.gen_members[0].genome.as_ptr();
        e.run_iteration(&snaps, &mut prof);
        e.capture_state_into(&mut recycled);
        assert_eq!(recycled, e.capture_state(), "recycled capture drifted");
        assert_eq!(
            recycled.gen_members[0].genome.as_ptr(),
            genome_ptr,
            "recycled capture reallocated a same-size genome buffer"
        );
    }

    #[test]
    #[should_panic(expected = "cell state validates")]
    fn restore_rejects_mismatched_config() {
        let cfg = TrainConfig::smoke(2);
        let mut e = CellEngine::new(0, &cfg, toy_data(&cfg));
        let state = e.capture_state();
        let mut other = cfg.clone();
        other.network.hidden_units += 1;
        let _ = CellEngine::from_state(&other, toy_data(&other), Pool::new(1), &state);
    }

    #[test]
    fn works_with_synthetic_digits() {
        // End-to-end on the real data type (tiny subset, paper-shaped dims).
        let mut cfg = TrainConfig::smoke(2);
        cfg.network.data_dim = lipiz_data::IMAGE_DIM;
        cfg.network.latent_dim = 8;
        cfg.training.dataset_size = 40;
        cfg.training.eval_batch = 10;
        cfg.training.batch_size = 10;
        cfg.training.batches_per_iteration = 1;
        let data = SynthDigits::generate(40, cfg.training.data_seed).images;
        let mut e = CellEngine::new(0, &cfg, data);
        let snaps: Vec<CellSnapshot> = (0..4).map(|_| e.snapshot()).collect();
        let mut prof = Profiler::new();
        e.run_iteration(&snaps, &mut prof);
        assert!(e.best_gen_fitness().is_finite());
    }
}
