//! Single-core sequential driver — the baseline column of Table III.
//!
//! Runs every grid cell in one process, one after another, with the exact
//! same per-iteration phase structure as the distributed runtime: at the
//! start of each iteration all centers are snapshotted (the sequential
//! analogue of the allgather), then each cell executes
//! gather → mutate → train → update-genomes against those snapshots.
//! Bulk-synchronous semantics make the sequential and distributed runs
//! bit-identical, which the integration suite asserts.

use crate::cell::{CellEngine, MixtureScorer};
use crate::config::{ExchangeMode, TrainConfig};
use crate::mixture::EnsembleModel;
use crate::profiling::{Profiler, Routine};
use crate::report::{CellResult, TrainReport};
use crate::resume::CellState;
use crate::snapshot::CellSnapshot;
use crate::topology::Grid;
use lipiz_telemetry::{SpanKind, Telemetry, TelemetrySummary, NO_CELL};
use lipiz_tensor::{Matrix, Pool};
use std::time::Instant;

/// Sequential whole-grid trainer.
pub struct SequentialTrainer {
    grid: Grid,
    cfg: TrainConfig,
    engines: Vec<CellEngine>,
    profiler: Profiler,
    /// Recycled per-cell center snapshots (the sequential "allgather"
    /// buffer) — genome buffers are reused across iterations.
    snapshots: Vec<CellSnapshot>,
    /// Async-exchange double buffer: the generation-`i-1` frame iteration
    /// `i` trains against (see [`ExchangeMode::Async`]). Unused (empty) in
    /// sync mode.
    prev_snapshots: Vec<CellSnapshot>,
    /// Recycled neighbor fan-out buffer.
    neighbor_scratch: Vec<CellSnapshot>,
    /// Run telemetry (rank 0 — the whole grid is one rank here). Disabled
    /// unless the config gates it on; the span API measures either way,
    /// which is how the driver's timing and the journal share one path.
    telemetry: Telemetry,
}

impl SequentialTrainer {
    /// Build engines for every cell. `make_data` supplies each cell's local
    /// dataset (cells may share content; each engine owns its copy, mirroring
    /// the distributed-memory layout).
    pub fn new(cfg: &TrainConfig, mut make_data: impl FnMut(usize) -> Matrix) -> Self {
        let grid = Grid::from_config(&cfg.grid);
        // One resident pool for the whole grid: every engine gets a clone
        // (cells run one after another here, so they can share workers).
        let pool = Pool::new(cfg.training.workers_per_cell);
        let engines = (0..grid.cell_count())
            .map(|i| CellEngine::with_pool(i, cfg, make_data(i), pool.clone()))
            .collect();
        Self {
            grid,
            cfg: cfg.clone(),
            engines,
            profiler: Profiler::new(),
            snapshots: Vec::new(),
            prev_snapshots: Vec::new(),
            neighbor_scratch: Vec::new(),
            telemetry: Telemetry::from_gate(
                cfg.telemetry.enabled,
                0,
                cfg.telemetry.ring_capacity,
            ),
        }
    }

    /// Rebuild a whole-grid trainer from captured per-cell states (flat
    /// grid order) — the resume path. `make_data` re-derives each cell's
    /// dataset exactly as at run start; everything else comes from the
    /// states. The resumed run is bit-identical to the uninterrupted one.
    ///
    /// # Panics
    /// Panics if the state count does not match the grid, the states are
    /// out of cell order, or they disagree on the iteration they were
    /// captured at (a torn checkpoint must never resume).
    pub fn from_states(
        cfg: &TrainConfig,
        mut make_data: impl FnMut(usize) -> Matrix,
        states: &[CellState],
    ) -> Self {
        let grid = Grid::from_config(&cfg.grid);
        crate::resume::assert_grid_states(states, grid.cell_count());
        let pool = Pool::new(cfg.training.workers_per_cell);
        let engines: Vec<CellEngine> = states
            .iter()
            .enumerate()
            .map(|(i, s)| CellEngine::from_state(cfg, make_data(i), pool.clone(), s))
            .collect();
        // Under async exchange the cut carries the frame the next iteration
        // consumes (generation `iterations_done - 1`); every cell stored
        // the identical frame, so restore it from the first.
        let prev_snapshots = if cfg.exchange.is_async() {
            states.first().map(|s| s.exchange_frame.clone()).unwrap_or_default()
        } else {
            Vec::new()
        };
        Self {
            grid,
            cfg: cfg.clone(),
            engines,
            profiler: Profiler::new(),
            snapshots: Vec::new(),
            prev_snapshots,
            neighbor_scratch: Vec::new(),
            telemetry: Telemetry::from_gate(
                cfg.telemetry.enabled,
                0,
                cfg.telemetry.ring_capacity,
            ),
        }
    }

    /// Capture every cell's full training state (flat grid order), for the
    /// checkpoint layer. Call at an iteration boundary. Under async
    /// exchange every state also carries the frame the next iteration will
    /// consume, so a resume re-enters the pipeline bit-exactly.
    pub fn capture_states(&mut self) -> Vec<CellState> {
        let frame = &self.prev_snapshots;
        self.engines
            .iter_mut()
            .map(|e| {
                let mut s = e.capture_state();
                s.exchange_frame = frame.clone();
                s
            })
            .collect()
    }

    /// Iterations completed so far (0 on a fresh trainer, the checkpoint
    /// iteration on a resumed one).
    pub fn iterations_done(&self) -> usize {
        self.engines.first().map_or(0, |e| e.iterations_done())
    }

    /// Attach a mixture scorer to every cell (see
    /// [`CellEngine::set_mixture_scorer`]).
    pub fn set_mixture_scorer(&mut self, scorer: MixtureScorer) {
        for e in &mut self.engines {
            e.set_mixture_scorer(scorer.clone());
        }
    }

    /// The grid topology.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Access to the per-cell engines (diagnostics/tests).
    pub fn engines_mut(&mut self) -> &mut [CellEngine] {
        &mut self.engines
    }

    /// Run one bulk-synchronous iteration over all cells.
    pub fn run_one_iteration(&mut self) {
        // Snapshot every center first (the sequential "allgather"). The
        // snapshot cost is charged to the gather routine, exactly like the
        // distributed version charges its allgather. Snapshot and fan-out
        // buffers are recycled across iterations: steady state performs no
        // genome-sized allocation anywhere in the driver loop.
        let iter = self.iterations_done();
        let span = self.telemetry.begin(SpanKind::Gather, NO_CELL, iter as u32);
        self.snapshots.resize_with(self.engines.len(), CellSnapshot::empty);
        for (e, snap) in self.engines.iter_mut().zip(&mut self.snapshots) {
            e.snapshot_into(snap);
        }
        let elapsed = self.telemetry.end(SpanKind::Gather, NO_CELL, iter as u32, span);
        self.profiler.record(Routine::Gather, elapsed);

        // Async exchange at staleness 1: iteration `i ≥ 1` trains against
        // the generation-`i-1` frame (iteration 0 bootstraps against its
        // own fresh snapshots — there is no earlier generation). The frame
        // choice mirrors the distributed pipeline exactly, which is what
        // keeps async runs byte-identical across drivers.
        let stale = self.cfg.exchange == ExchangeMode::Async && iter >= 1;
        let frame = if stale { &self.prev_snapshots } else { &self.snapshots };
        assert_eq!(frame.len(), self.engines.len(), "exchange frame lost a generation");

        for idx in 0..self.engines.len() {
            let neighbors = self.grid.neighbors(idx);
            self.neighbor_scratch.resize_with(neighbors.len(), CellSnapshot::empty);
            let frame = if stale { &self.prev_snapshots } else { &self.snapshots };
            for (slot, n) in neighbors.into_iter().enumerate() {
                self.neighbor_scratch[slot].copy_from(&frame[n]);
            }
            self.engines[idx].run_iteration_with(
                &self.neighbor_scratch,
                &mut self.profiler,
                &mut self.telemetry,
            );
        }

        // The generation-`i` frame becomes what iteration `i+1` consumes.
        if self.cfg.exchange.is_async() {
            std::mem::swap(&mut self.snapshots, &mut self.prev_snapshots);
        }
    }

    /// Run to the configured iteration count (or the checkpoint pause
    /// point) and produce the report. On a resumed trainer this runs only
    /// the remaining iterations.
    pub fn run(&mut self) -> TrainReport {
        self.run_hooked(|_, _, _| {})
    }

    /// [`Self::run`] with a per-iteration hook, mirroring the simulated
    /// cluster's `run_resumable`: `on_iteration(iter, engines, frame)`
    /// fires after every completed iteration (`iter` is the count *before*
    /// it ran) so a driver can commit checkpoints on its cadence. `frame`
    /// is the exchange frame the *next* iteration will consume — empty in
    /// sync mode, the generation-`iter` snapshots under async (a committing
    /// driver must persist it for the resumed run to stay bit-exact).
    pub fn run_hooked(
        &mut self,
        mut on_iteration: impl FnMut(usize, &mut [CellEngine], &[CellSnapshot]),
    ) -> TrainReport {
        let start = Instant::now();
        if self.cfg.exchange.is_async() {
            self.telemetry.metrics.staleness.set(1);
        }
        let target = self.cfg.checkpoint.effective_iterations(self.cfg.coevolution.iterations);
        while self.iterations_done() < target {
            let iter = self.iterations_done();
            self.run_one_iteration();
            let frame: &[CellSnapshot] =
                if self.cfg.exchange.is_async() { &self.prev_snapshots } else { &[] };
            on_iteration(iter, &mut self.engines, frame);
        }
        self.write_journal();
        self.finish(start.elapsed().as_secs_f64())
    }

    /// Flush the journal to `<telemetry.dir>/node00.jsonl` (no-op when
    /// telemetry is off or no directory is configured).
    fn write_journal(&self) {
        if let Some(dir) = &self.cfg.telemetry.dir {
            let path = std::path::Path::new(dir).join("node00.jsonl");
            if let Err(e) = self.telemetry.write_journal(&path) {
                eprintln!("telemetry: journal write failed ({}): {e}", path.display());
            }
        }
    }

    /// Mutable telemetry access, for a driving layer that journals its own
    /// instants (checkpoint commits, pauses) onto this rank's timeline.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// The run's telemetry aggregate. `iterations` counts grid iterations
    /// (the per-cell counter is normalized by the cell count).
    pub fn telemetry_summary(&self) -> TelemetrySummary {
        let mut s = self.telemetry.summary(NO_CELL);
        s.iterations = self.iterations_done() as u64;
        s
    }

    /// Build the final report (used by `run` and by the harness when it
    /// drives iterations manually).
    pub fn finish(&mut self, wall_seconds: f64) -> TrainReport {
        let cells: Vec<CellResult> = self
            .engines
            .iter_mut()
            .enumerate()
            .map(|(i, e)| {
                let coords = self.grid.coords(i);
                let gen_fitness = e.best_gen_fitness();
                let disc_pop = e.disc_population();
                let disc_fitness = disc_pop.members()[disc_pop.best_index()].fitness;
                CellResult {
                    cell: i,
                    coords,
                    gen_fitness,
                    disc_fitness,
                    mixture_weights: e.mixture().weights().to_vec(),
                }
            })
            .collect();
        let best_cell = cells
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.gen_fitness.partial_cmp(&b.gen_fitness).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map_or(0, |(i, _)| i);
        TrainReport {
            driver: "sequential".into(),
            grid: (self.grid.rows(), self.grid.cols()),
            iterations: self.engines.first().map_or(0, |e| e.iterations_done()),
            wall_seconds,
            profile: self.profiler.report(),
            cells,
            best_cell,
        }
    }

    /// Final ensembles of every cell (flat grid order).
    pub fn ensembles(&mut self) -> Vec<EnsembleModel> {
        self.engines.iter_mut().map(|e| e.ensemble()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipiz_tensor::Rng64;

    fn toy_data(cfg: &TrainConfig) -> Matrix {
        let mut rng = Rng64::seed_from(cfg.training.data_seed);
        rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
    }

    #[test]
    fn full_smoke_run_produces_report() {
        let cfg = TrainConfig::smoke(2);
        let mut t = SequentialTrainer::new(&cfg, |_| toy_data(&cfg));
        let report = t.run();
        assert_eq!(report.driver, "sequential");
        assert_eq!(report.grid, (2, 2));
        assert_eq!(report.iterations, 2);
        assert_eq!(report.cells.len(), 4);
        assert!(report.wall_seconds > 0.0);
        assert!(report.best().gen_fitness.is_finite());
        // Gather + 4 phases recorded.
        assert!(report.profile.seconds(Routine::Train) > 0.0);
        assert!(report.profile.seconds(Routine::Gather) >= 0.0);
    }

    #[test]
    fn sequential_run_is_deterministic() {
        let cfg = TrainConfig::smoke(2);
        let run = || {
            let mut t = SequentialTrainer::new(&cfg, |_| toy_data(&cfg));
            t.run();
            t.ensembles().into_iter().map(|e| e.genomes).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn migration_spreads_genomes() {
        // After an iteration, each cell's import slots hold the neighbors'
        // iteration-start centers.
        let cfg = TrainConfig::smoke(2);
        let mut t = SequentialTrainer::new(&cfg, |_| toy_data(&cfg));
        // Capture the initial snapshot of cell 1's center.
        let snap1 = t.engines_mut()[1].snapshot();
        t.run_one_iteration();
        // Cell 0's W/E import slots (3 and 4 in N,S,W,E order) both map to
        // cell 1 on a 2×2 torus.
        let imports = t.engines_mut()[0].gen_population().members()[3].genome.clone();
        assert_eq!(imports, snap1.gen_genome);
    }

    #[test]
    fn best_cell_has_lowest_fitness() {
        let cfg = TrainConfig::smoke(3);
        let mut t = SequentialTrainer::new(&cfg, |_| toy_data(&cfg));
        let report = t.run();
        let best = report.best().gen_fitness;
        for c in &report.cells {
            assert!(best <= c.gen_fitness + 1e-12);
        }
    }

    #[test]
    fn paused_then_resumed_run_matches_uninterrupted() {
        // Grid-level resume equivalence: pause after 1 of 3 iterations,
        // capture, rebuild from states, finish — the final ensembles must
        // be byte-identical to the uninterrupted run's.
        let mut cfg = TrainConfig::smoke(2);
        cfg.coevolution.iterations = 3;

        let mut reference = SequentialTrainer::new(&cfg, |_| toy_data(&cfg));
        let ref_report = reference.run();
        let ref_ensembles = reference.ensembles();

        let paused_cfg = cfg.clone().with_pause_after(1);
        let mut first = SequentialTrainer::new(&paused_cfg, |_| toy_data(&paused_cfg));
        let paused_report = first.run();
        assert_eq!(paused_report.iterations, 1, "pause_after did not stop the run");
        let states = first.capture_states();
        drop(first);

        let mut resumed = SequentialTrainer::from_states(&cfg, |_| toy_data(&cfg), &states);
        assert_eq!(resumed.iterations_done(), 1);
        let resumed_report = resumed.run();

        assert_eq!(resumed_report.iterations, 3);
        assert_eq!(resumed_report.best_cell, ref_report.best_cell);
        for (a, b) in resumed_report.cells.iter().zip(&ref_report.cells) {
            assert_eq!(a.gen_fitness, b.gen_fitness, "cell {} fitness", a.cell);
            assert_eq!(a.mixture_weights, b.mixture_weights, "cell {} mixture", a.cell);
        }
        assert_eq!(resumed.ensembles(), ref_ensembles, "resumed ensembles diverged");
    }

    #[test]
    #[should_panic(expected = "torn checkpoint")]
    fn resume_rejects_mixed_iteration_states() {
        let cfg = TrainConfig::smoke(2);
        let mut t = SequentialTrainer::new(&cfg, |_| toy_data(&cfg));
        t.run_one_iteration();
        let mut states = t.capture_states();
        states[2].iteration = 0; // torn: one cell from a different cut
        let _ = SequentialTrainer::from_states(&cfg, |_| toy_data(&cfg), &states);
    }

    #[test]
    fn telemetry_is_inert_and_observes_the_run() {
        // Same seed with and without telemetry: identical ensembles (the
        // recorder never touches RNG or training state), and the enabled
        // run's summary reflects the grid's work.
        let cfg = TrainConfig::smoke(2);
        let mut plain = SequentialTrainer::new(&cfg, |_| toy_data(&cfg));
        plain.run();

        let mut tel_cfg = cfg.clone();
        tel_cfg.telemetry.enabled = true; // no dir: record, write nothing
        let mut observed = SequentialTrainer::new(&tel_cfg, |_| toy_data(&tel_cfg));
        observed.run();

        assert_eq!(plain.ensembles(), observed.ensembles(), "telemetry changed training");
        let s = observed.telemetry_summary();
        assert_eq!(s.iterations, 2);
        // 2 iterations × (1 allgather + 4 per-cell ingests) gather spans.
        assert_eq!(s.gather_ns.count, 10);
        assert_eq!(s.train_ns.count, 8);
        assert_eq!(s.dropped_events, 0);
        assert!(plain.telemetry_summary().gather_ns.is_empty());
    }

    #[test]
    fn iterations_counted_per_engine() {
        let mut cfg = TrainConfig::smoke(2);
        cfg.coevolution.iterations = 3;
        let mut t = SequentialTrainer::new(&cfg, |_| toy_data(&cfg));
        let report = t.run();
        assert_eq!(report.iterations, 3);
    }
}
