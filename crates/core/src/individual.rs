//! Individuals (network genomes + evolvable hyperparameters) and
//! sub-populations.

use lipiz_nn::GanLoss;
use lipiz_tensor::Rng64;

/// One coevolutionary individual: a network genome with its evolvable
/// hyperparameters and last evaluated fitness (lower is better — fitness is
/// an adversarial loss).
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// Flat network parameters (see `lipiz_nn::Mlp::genome`).
    pub genome: Vec<f32>,
    /// Current Adam learning rate (hyperparameter mutated by evolution).
    pub lr: f32,
    /// Generator objective this individual trains under.
    pub loss: GanLoss,
    /// Last evaluated fitness (adversarial loss; lower is better).
    pub fitness: f64,
}

impl Individual {
    /// Build a fresh individual around a genome.
    pub fn new(genome: Vec<f32>, lr: f32, loss: GanLoss) -> Self {
        Self { genome, lr, loss, fitness: f64::INFINITY }
    }
}

/// A cell's sub-population: slot 0 is the cell's own center, slots `1..`
/// hold the most recent imports from the neighborhood (N, S, W, E order for
/// the paper's five-cell pattern).
#[derive(Debug, Clone, PartialEq)]
pub struct SubPopulation {
    members: Vec<Individual>,
}

impl SubPopulation {
    /// Create with the center individual and `imports` empty slots cloned
    /// from the center (before the first gather every slot holds the
    /// center's own genome, matching Lipizzaner's initialization).
    pub fn bootstrap(center: Individual, imports: usize) -> Self {
        let mut members = Vec::with_capacity(1 + imports);
        for _ in 0..imports {
            members.push(center.clone());
        }
        members.insert(0, center);
        Self { members }
    }

    /// Rebuild a sub-population from captured members (center first) — the
    /// checkpoint-restore path.
    ///
    /// # Panics
    /// Panics if `members` is empty.
    pub fn from_members(members: Vec<Individual>) -> Self {
        assert!(!members.is_empty(), "sub-population needs at least a center");
        Self { members }
    }

    /// All members, center first.
    pub fn members(&self) -> &[Individual] {
        &self.members
    }

    /// Mutable members.
    pub fn members_mut(&mut self) -> &mut [Individual] {
        &mut self.members
    }

    /// Sub-population size (s in the paper).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when empty (never by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The center individual.
    pub fn center(&self) -> &Individual {
        &self.members[0]
    }

    /// Mutable center.
    pub fn center_mut(&mut self) -> &mut Individual {
        &mut self.members[0]
    }

    /// Overwrite import slot `slot` (1-based relative to neighbors:
    /// `slot ∈ 1..len()`).
    ///
    /// # Panics
    /// Panics when writing slot 0 (the center is never overwritten by a
    /// gather) or out of range.
    pub fn set_import(&mut self, slot: usize, ind: Individual) {
        assert!(slot >= 1 && slot < self.members.len(), "import slot out of range");
        self.members[slot] = ind;
    }

    /// [`SubPopulation::set_import`] from borrowed fields, recycling the
    /// slot's genome buffer — the gather phase's zero-allocation path
    /// (steady-state imports always have the same genome length).
    ///
    /// # Panics
    /// Panics when writing slot 0 or out of range.
    pub fn assign_import(
        &mut self,
        slot: usize,
        genome: &[f32],
        lr: f32,
        loss: GanLoss,
        fitness: f64,
    ) {
        assert!(slot >= 1 && slot < self.members.len(), "import slot out of range");
        let m = &mut self.members[slot];
        m.genome.clear();
        m.genome.extend_from_slice(genome);
        m.lr = lr;
        m.loss = loss;
        m.fitness = fitness;
    }

    /// Index of the best (lowest-fitness) member.
    pub fn best_index(&self) -> usize {
        self.members
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.fitness.partial_cmp(&b.fitness).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .expect("non-empty subpopulation")
    }

    /// Tournament selection: draw `k` distinct members, return the index of
    /// the fittest (Table I: tournament size 2).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn tournament(&self, rng: &mut Rng64, k: usize) -> usize {
        let mut scratch = Vec::new();
        self.tournament_with(rng, k, &mut scratch)
    }

    /// [`SubPopulation::tournament`] with a recycled draw buffer — same
    /// RNG draws, same winner, zero allocations once `scratch` has
    /// capacity for the sub-population.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn tournament_with(
        &self,
        rng: &mut Rng64,
        k: usize,
        scratch: &mut Vec<usize>,
    ) -> usize {
        assert!(k > 0, "tournament size must be positive");
        let k = k.min(self.members.len());
        rng.sample_distinct_with(self.members.len(), k, scratch);
        scratch
            .iter()
            .copied()
            .min_by(|&a, &b| {
                self.members[a]
                    .fitness
                    .partial_cmp(&self.members[b].fitness)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty tournament")
    }

    /// Promote the best member to the center slot (Lipizzaner's
    /// replacement step). Returns `true` if the center changed.
    pub fn promote_best(&mut self) -> bool {
        let best = self.best_index();
        if best == 0 {
            return false;
        }
        self.members.swap(0, best);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ind(tag: f32, fitness: f64) -> Individual {
        let mut i = Individual::new(vec![tag; 4], 2e-4, GanLoss::Heuristic);
        i.fitness = fitness;
        i
    }

    #[test]
    fn bootstrap_fills_slots_with_center() {
        let pop = SubPopulation::bootstrap(ind(1.0, 0.5), 4);
        assert_eq!(pop.len(), 5);
        for m in pop.members() {
            assert_eq!(m.genome, vec![1.0; 4]);
        }
    }

    #[test]
    fn set_import_replaces_slot() {
        let mut pop = SubPopulation::bootstrap(ind(1.0, 0.5), 2);
        pop.set_import(2, ind(9.0, 0.1));
        assert_eq!(pop.members()[2].genome, vec![9.0; 4]);
        assert_eq!(pop.center().genome, vec![1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "import slot")]
    fn cannot_import_into_center() {
        let mut pop = SubPopulation::bootstrap(ind(1.0, 0.5), 2);
        pop.set_import(0, ind(9.0, 0.1));
    }

    #[test]
    fn best_index_finds_lowest_fitness() {
        let mut pop = SubPopulation::bootstrap(ind(1.0, 0.5), 3);
        pop.set_import(2, ind(2.0, 0.1));
        pop.set_import(3, ind(3.0, 0.9));
        assert_eq!(pop.best_index(), 2);
    }

    #[test]
    fn promote_best_swaps_center() {
        let mut pop = SubPopulation::bootstrap(ind(1.0, 0.5), 2);
        pop.set_import(1, ind(7.0, 0.01));
        assert!(pop.promote_best());
        assert_eq!(pop.center().genome, vec![7.0; 4]);
        // Former center now lives in slot 1.
        assert_eq!(pop.members()[1].genome, vec![1.0; 4]);
        // Best already center: no change.
        assert!(!pop.promote_best());
    }

    #[test]
    fn tournament_prefers_fitter_members() {
        let mut pop = SubPopulation::bootstrap(ind(0.0, 10.0), 4);
        for s in 1..5 {
            pop.set_import(s, ind(s as f32, 10.0 - s as f64));
        }
        // Full tournament (k = len) must always return the global best.
        let mut rng = Rng64::seed_from(1);
        assert_eq!(pop.tournament(&mut rng, 5), 4);
        // Size-2 tournaments pick the better of two random draws: over many
        // trials the best member must win strictly more often than the worst.
        let mut best_wins = 0;
        let mut worst_wins = 0;
        for _ in 0..200 {
            match pop.tournament(&mut rng, 2) {
                4 => best_wins += 1,
                0 => worst_wins += 1,
                _ => {}
            }
        }
        assert!(best_wins > worst_wins, "best {best_wins} vs worst {worst_wins}");
        assert_eq!(worst_wins, 0, "the worst member can never win a 2-tournament");
    }

    #[test]
    fn tournament_handles_nan_fitness() {
        let mut pop = SubPopulation::bootstrap(ind(0.0, f64::NAN), 1);
        pop.set_import(1, ind(1.0, 0.5));
        let mut rng = Rng64::seed_from(2);
        // Must not panic regardless of NaN ordering.
        let _ = pop.tournament(&mut rng, 2);
        let _ = pop.best_index();
    }

    #[test]
    fn fresh_individual_has_infinite_fitness() {
        let i = Individual::new(vec![0.0], 1e-3, GanLoss::Minimax);
        assert!(i.fitness.is_infinite());
    }
}
