//! Deterministic resume: the complete training state of one cell as plain
//! data.
//!
//! A [`CellState`] captures *everything* a [`crate::cell::CellEngine`]
//! needs to continue a run bit-exactly from an iteration boundary: both
//! sub-populations, the Adam moments and step counts, the mixture weights,
//! every derived RNG stream (including a pending Box–Muller spare), the
//! iteration and batch counters, and the data-loader cursor. The dataset
//! itself is *not* captured — every rank re-derives it from the
//! configuration, exactly as it does at run start.
//!
//! The serialization of this state (versioned `Wire` encoding, atomic
//! commit, the async background writer) lives in `lipiz-runtime`'s
//! checkpoint module; this module owns the *semantic* state and its
//! validation. The proof obligation is the repo's signature one: a run
//! checkpointed at iteration `k` and resumed must produce a byte-identical
//! `.lpz` to the uninterrupted run, across all four drivers.

use crate::config::TrainConfig;
use crate::individual::Individual;
use crate::snapshot::CellSnapshot;
use lipiz_data::BatchLoaderState;
use lipiz_nn::AdamState;
use lipiz_tensor::Rng64State;
use std::fmt;

/// Validation failure for a captured cell state against a configuration.
///
/// A state that fails validation must never be restored partially — the
/// checkpoint layer surfaces this as a typed load error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateError {
    /// Which invariant was violated.
    pub what: &'static str,
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cell state: {}", self.what)
    }
}

impl std::error::Error for StateError {}

/// The full training state of one grid cell at an iteration boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct CellState {
    /// Flat grid index of the cell.
    pub cell: usize,
    /// Iterations completed when the state was captured.
    pub iteration: usize,
    /// Mini-batches consumed so far (drives the disc-skip schedule).
    pub batch_counter: u64,
    /// Generator sub-population, center first.
    pub gen_members: Vec<Individual>,
    /// Discriminator sub-population, center first.
    pub disc_members: Vec<Individual>,
    /// Mixture weights (already normalized; restored bit-exactly, never
    /// renormalized).
    pub mixture: Vec<f32>,
    /// Generator Adam optimizer state.
    pub adam_g: AdamState,
    /// Discriminator Adam optimizer state.
    pub adam_d: AdamState,
    /// Hyperparameter-mutation RNG stream.
    pub rng_mutate: Rng64State,
    /// Training RNG stream (latents, tournaments).
    pub rng_train: Rng64State,
    /// Mixture-evolution RNG stream.
    pub rng_mixture: Rng64State,
    /// Mini-batch loader cursor (the data-ring position).
    pub loader: BatchLoaderState,
    /// The neighbor-exchange frame the *next* iteration will consume:
    /// under `--exchange async` the run is one snapshot generation behind,
    /// so a checkpoint cut must carry the completed frame along. Empty in
    /// sync mode (the next iteration gathers its own frame).
    pub exchange_frame: Vec<CellSnapshot>,
}

impl CellState {
    /// Check the state against the configuration it claims to belong to.
    /// Every structural invariant the restore path relies on is verified
    /// here, so a corrupted or mismatched checkpoint fails loudly instead
    /// of restoring a half-consistent engine.
    pub fn validate(&self, cfg: &TrainConfig) -> Result<(), StateError> {
        let err = |what| Err(StateError { what });
        if self.cell >= cfg.cells() {
            return err("cell index outside the grid");
        }
        if self.iteration > cfg.coevolution.iterations {
            return err("iteration beyond the configured run length");
        }
        let s = cfg.subpopulation_size();
        if self.gen_members.len() != s || self.disc_members.len() != s {
            return err("sub-population size vs neighborhood");
        }
        if self.mixture.len() != s {
            return err("mixture weight count vs sub-population");
        }
        if !self.mixture.iter().all(|w| w.is_finite() && *w >= 0.0) {
            return err("mixture weights not finite and non-negative");
        }
        let net = cfg.network.to_network_config();
        let gen_params = param_count(&net.generator_dims());
        let disc_params = param_count(&net.discriminator_dims());
        if self.gen_members.iter().any(|m| m.genome.len() != gen_params) {
            return err("generator genome length vs topology");
        }
        if self.disc_members.iter().any(|m| m.genome.len() != disc_params) {
            return err("discriminator genome length vs topology");
        }
        if self.adam_g.m.len() != gen_params || self.adam_g.v.len() != gen_params {
            return err("generator Adam width vs topology");
        }
        if self.adam_d.m.len() != disc_params || self.adam_d.v.len() != disc_params {
            return err("discriminator Adam width vs topology");
        }
        if self.loader.cursor > self.loader.order.len() {
            return err("loader cursor beyond its permutation");
        }
        if !self.exchange_frame.is_empty() {
            if self.exchange_frame.len() != cfg.cells() {
                return err("exchange frame size vs grid");
            }
            if self
                .exchange_frame
                .iter()
                .any(|s| s.gen_genome.len() != gen_params || s.disc_genome.len() != disc_params)
            {
                return err("exchange frame genome length vs topology");
            }
        }
        Ok(())
    }
}

/// Flat parameter count of an MLP with the given layer dims.
fn param_count(dims: &[usize]) -> usize {
    dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
}

/// Assert a whole grid's captured states form a resumable set: one state
/// per cell, in flat grid order, all from the same iteration cut. Shared
/// by every driver's resume path so the invariants cannot drift apart.
///
/// # Panics
/// Panics on a count mismatch, out-of-order cells, or a torn cut.
pub fn assert_grid_states(states: &[CellState], cells: usize) {
    assert_eq!(states.len(), cells, "cell state count vs grid");
    for (i, s) in states.iter().enumerate() {
        assert_eq!(s.cell, i, "cell states out of grid order");
        assert_eq!(
            s.iteration, states[0].iteration,
            "cell states from different iterations (torn checkpoint)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellEngine;
    use lipiz_tensor::{Matrix, Rng64};

    fn toy_data(cfg: &TrainConfig) -> Matrix {
        let mut rng = Rng64::seed_from(cfg.training.data_seed);
        rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
    }

    fn captured_state() -> (TrainConfig, CellState) {
        let cfg = TrainConfig::smoke(2);
        let mut engine = CellEngine::new(1, &cfg, toy_data(&cfg));
        (cfg.clone(), engine.capture_state())
    }

    #[test]
    fn captured_state_validates() {
        let (cfg, state) = captured_state();
        assert!(state.validate(&cfg).is_ok());
    }

    type Corruption = Box<dyn Fn(&mut CellState)>;

    #[test]
    fn validation_rejects_structural_corruption() {
        let (cfg, base) = captured_state();
        let cases: Vec<(&'static str, Corruption)> = vec![
            ("cell index", Box::new(|s| s.cell = 99)),
            ("iteration", Box::new(|s| s.iteration = 1000)),
            (
                "pop size",
                Box::new(|s| {
                    s.gen_members.pop();
                }),
            ),
            ("mixture count", Box::new(|s| s.mixture.push(0.0))),
            ("mixture nan", Box::new(|s| s.mixture[0] = f32::NAN)),
            (
                "gen genome len",
                Box::new(|s| {
                    s.gen_members[2].genome.pop();
                }),
            ),
            ("disc genome len", Box::new(|s| s.disc_members[0].genome.push(0.0))),
            (
                "adam width",
                Box::new(|s| {
                    s.adam_g.m.pop();
                }),
            ),
            ("loader cursor", Box::new(|s| s.loader.cursor = usize::MAX)),
        ];
        for (label, mutate) in cases {
            let mut state = base.clone();
            mutate(&mut state);
            assert!(state.validate(&cfg).is_err(), "corruption not caught: {label}");
        }
    }

    #[test]
    fn validation_rejects_config_mismatch() {
        let (_, state) = captured_state();
        // A 2x2-grid state must not restore under a different topology.
        let mut other = TrainConfig::smoke(2);
        other.network.hidden_units = 12;
        assert!(state.validate(&other).is_err());
    }
}
