//! Per-rank virtual clocks.

use serde::{Deserialize, Serialize};

/// A rank's virtual clock, in seconds since job start.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RankClock {
    t: f64,
}

impl RankClock {
    /// Clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.t
    }

    /// Advance by `seconds` (compute or communication).
    ///
    /// # Panics
    /// Panics on negative or non-finite durations — a sign of a broken
    /// measurement, which must not silently corrupt the schedule.
    pub fn advance(&mut self, seconds: f64) {
        assert!(seconds.is_finite() && seconds >= 0.0, "invalid virtual duration {seconds}");
        self.t += seconds;
    }

    /// Jump forward to `t` (a synchronization point). No-op if already
    /// past it.
    pub fn sync_to(&mut self, t: f64) {
        if t > self.t {
            self.t = t;
        }
    }
}

/// Synchronize a set of clocks at a barrier: all jump to the max.
/// Returns the barrier time.
pub fn barrier(clocks: &mut [RankClock]) -> f64 {
    let t = clocks.iter().map(|c| c.now()).fold(0.0, f64::max);
    for c in clocks.iter_mut() {
        c.sync_to(t);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = RankClock::new();
        c.advance(1.5);
        c.advance(0.5);
        assert!((c.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sync_only_moves_forward() {
        let mut c = RankClock::new();
        c.advance(5.0);
        c.sync_to(3.0);
        assert_eq!(c.now(), 5.0);
        c.sync_to(7.0);
        assert_eq!(c.now(), 7.0);
    }

    #[test]
    fn barrier_aligns_all_clocks() {
        let mut clocks = vec![RankClock::new(), RankClock::new(), RankClock::new()];
        clocks[0].advance(1.0);
        clocks[1].advance(3.0);
        clocks[2].advance(2.0);
        let t = barrier(&mut clocks);
        assert_eq!(t, 3.0);
        assert!(clocks.iter().all(|c| c.now() == 3.0));
    }

    #[test]
    #[should_panic(expected = "invalid virtual duration")]
    fn negative_duration_rejected() {
        RankClock::new().advance(-1.0);
    }
}
