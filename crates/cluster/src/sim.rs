//! The bulk-synchronous virtual-time executor.

use crate::allocation::Placement;
use crate::costmodel::CommCost;
use crate::platform::ClusterSpec;
use crate::report::{CommStats, SimOutcome};
use crate::vtime::RankClock;
use lipiz_core::{
    CellEngine, CellResult, CellSnapshot, CellState, Grid, Profiler, Routine, TrainConfig,
    TrainReport,
};
use lipiz_mpi::{replacement_schedule, FaultPlan, ReplacementSchedule};
use lipiz_telemetry::{EventKind, SpanKind, Telemetry};
use lipiz_tensor::{Matrix, Pool};
use std::path::Path;
use std::time::Instant;

/// The in-flight replacement the config's fault plan implies, if any —
/// exactly the arithmetic the distributed master and slaves run (see
/// [`replacement_schedule`]), so the simulator degrades the same run the
/// same way. A kill at or before the resume point cannot be modeled (the
/// frozen death-frame would predate the simulation) and is ignored.
fn scheduled_fault(cfg: &TrainConfig, start_iter: usize) -> Option<ReplacementSchedule> {
    let plan = FaultPlan::parse(cfg.fault.plan.as_deref()?).ok()?;
    let sched = replacement_schedule(
        &plan,
        cfg.fault.max_stale_iters,
        cfg.checkpoint.every,
        cfg.checkpoint.effective_iterations(cfg.coevolution.iterations),
        cfg.cells(),
    )?;
    (sched.kill_iter > start_iter).then_some(sched)
}

/// Simulation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationOptions {
    /// Seed for placement / best-effort jitter (vary across the paper's
    /// "ten independent executions").
    pub run_seed: u64,
    /// Fixed per-iteration startup overhead charged to every rank
    /// (scheduler + heartbeat handling), seconds.
    pub per_iteration_overhead: f64,
    /// Fault injection: slow one slave down by a factor, modeling a
    /// straggler on the best-effort queue (`(cell_index, slowdown)`).
    /// The BSP allgather makes every rank wait for it — the failure mode
    /// the paper's heartbeat monitoring is designed to surface.
    pub straggler: Option<(usize, f64)>,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        Self { run_seed: 1, per_iteration_overhead: 1e-4, straggler: None }
    }
}

/// A virtual-time cluster run of the distributed trainer.
pub struct SimulatedCluster {
    spec: ClusterSpec,
    cost: CommCost,
    opts: SimulationOptions,
}

impl SimulatedCluster {
    /// Create a simulator for the given platform and cost model.
    pub fn new(spec: ClusterSpec, cost: CommCost, opts: SimulationOptions) -> Self {
        Self { spec, cost, opts }
    }

    /// Cluster-UY with its default cost model.
    pub fn cluster_uy(opts: SimulationOptions) -> Self {
        Self::new(ClusterSpec::cluster_uy(), CommCost::cluster_uy(), opts)
    }

    /// Execute the full training run in virtual time.
    ///
    /// Every cell engine runs for real on the host; the returned report's
    /// `wall_seconds` is the *virtual* distributed wall-clock. Training
    /// results are bit-identical to `SequentialTrainer` under the same
    /// config.
    pub fn run(&self, cfg: &TrainConfig, make_data: impl FnMut(usize) -> Matrix) -> SimOutcome {
        self.run_resumable(cfg, make_data, None, |_, _, _| {})
    }

    /// [`SimulatedCluster::run`] with checkpoint hooks: optionally start
    /// from captured per-cell `resume` states (flat grid order, all from
    /// the same iteration), and invoke `on_iteration(iter, engines, frame)`
    /// after every completed iteration so a driver can commit checkpoints
    /// on its cadence (`frame` is the exchange frame the *next* iteration
    /// will consume — empty in sync mode; a committing driver must persist
    /// it under `--exchange async`). Virtual-time accounting restarts at
    /// zero for a resumed run (wall clocks are not part of the training
    /// state).
    ///
    /// # Panics
    /// Panics if `resume` disagrees with the grid (count, cell order, or a
    /// torn iteration cut).
    pub fn run_resumable(
        &self,
        cfg: &TrainConfig,
        mut make_data: impl FnMut(usize) -> Matrix,
        resume: Option<&[CellState]>,
        mut on_iteration: impl FnMut(usize, &mut [CellEngine], &[CellSnapshot]),
    ) -> SimOutcome {
        let host_start = Instant::now();
        let grid = Grid::from_config(&cfg.grid);
        let cells = grid.cell_count();
        let placement = Placement::allocate(&self.spec, cells + 1, self.opts.run_seed);

        // All simulated slaves run in this one host process, so they share
        // one resident pool instead of spawning workers per cell.
        let pool = Pool::new(cfg.training.workers_per_cell);
        let mut engines: Vec<CellEngine> = match resume {
            None => (0..cells)
                .map(|i| CellEngine::with_pool(i, cfg, make_data(i), pool.clone()))
                .collect(),
            Some(states) => {
                lipiz_core::resume::assert_grid_states(states, cells);
                states
                    .iter()
                    .enumerate()
                    .map(|(i, s)| CellEngine::from_state(cfg, make_data(i), pool.clone(), s))
                    .collect()
            }
        };
        let speed_of = |cell: usize| -> f64 {
            let mut speed = placement.speed_of(cell + 1);
            if let Some((victim, slowdown)) = self.opts.straggler {
                if victim == cell {
                    speed *= slowdown.max(1.0);
                }
            }
            speed
        };
        // Slave rank r handles cell r (master is world rank 0 / placement 0;
        // slaves are placements 1..=cells).
        let mut clocks = vec![RankClock::new(); cells];
        let mut profilers: Vec<Profiler> = (0..cells).map(|_| Profiler::new()).collect();
        let mut comm = CommStats::default();

        // Virtual-time telemetry: one recorder per simulated slave rank,
        // stamped via `record_at` with the rank clock so the exported
        // timeline lives on the simulated clock — same journal format as
        // the real drivers (the solo catch-up window is not journaled
        // per-iteration; it runs on host time inside the kill block).
        let mut tels: Vec<Telemetry> = (0..cells)
            .map(|c| {
                Telemetry::from_gate(
                    cfg.telemetry.is_enabled(),
                    (c + 1) as u32,
                    cfg.telemetry.ring_capacity,
                )
            })
            .collect();
        let vns = |t: f64| (t.max(0.0) * 1e9) as u64;

        let start_iter = engines.first().map_or(0, |e| e.iterations_done());
        let target = cfg.checkpoint.effective_iterations(cfg.coevolution.iterations);
        // Scripted fault modeling (mirrors the distributed stack exactly):
        // the victim dies at the top of iteration `kill_iter` — its last
        // exchanged snapshot is round kill_iter-1 — and its replacement
        // restores from the newest committed cut (or from scratch), catches
        // up solo against the frozen death-frame, and rejoins the live
        // exchange at `rejoin_round`. Survivors meanwhile train against the
        // victim's frozen snapshot, which the fan-in root substitutes for
        // every round of the absence window. Note the replacement's
        // iteration counter runs ahead of the grid inside the window, so
        // checkpoint hooks must not commit grid-wide cuts there (the real
        // drivers' per-cell checkpoints have no such constraint).
        let fault = scheduled_fault(cfg, start_iter);
        let mut victim_cut: Option<CellState> = None;
        // Recycled snapshot + neighbor fan-out buffers (the virtual clocks
        // measure host time, so the capture path should stay as cheap as
        // the real drivers': no genome-sized allocations per iteration).
        let mut snapshots: Vec<CellSnapshot> = Vec::new();
        let mut neighbor_scratch: Vec<CellSnapshot> = Vec::new();

        // `--exchange async`: iteration `i ≥ 1` trains against the
        // generation-`i-1` frame held here (swapped with `snapshots` after
        // every iteration), exactly like the distributed pipeline and the
        // sequential trainer. A resumed run re-seeds it from the
        // checkpointed frame.
        let async_mode = cfg.exchange.is_async();
        let mut prev_snapshots: Vec<CellSnapshot> = Vec::new();
        if async_mode {
            if let Some(states) = resume {
                prev_snapshots =
                    states.first().map(|s| s.exchange_frame.clone()).unwrap_or_default();
            }
            assert!(
                start_iter == 0 || prev_snapshots.len() == cells,
                "async resume needs the checkpointed exchange frame"
            );
        }
        if async_mode {
            for t in &mut tels {
                t.metrics.staleness.set(1);
            }
        }
        // Virtual completion time of the in-flight generation (the frame
        // the *next* iteration consumes); restarts at zero on resume, like
        // every other clock. `prev_submit` remembers when each rank posted
        // the in-flight generation, for the exchange-wall metric.
        let mut pending_complete = 0.0f64;
        let mut prev_submit = vec![0.0f64; cells];
        // The death-frame the fan-in root freezes at the kill: the victim's
        // slot is substituted from it for every absence round, and under
        // async the rejoiner's first live iteration consumes the whole
        // frame (it never received generation `rejoin - 1`).
        let mut frozen_frame: Vec<CellSnapshot> = Vec::new();
        for iter in start_iter..target {
            let absent = |c: usize| {
                fault.is_some_and(|s| {
                    c == s.cell && iter >= s.kill_iter && iter < s.rejoin_round
                })
            };
            if let Some(sched) = fault {
                if iter == sched.kill_iter {
                    tels[sched.cell].record_at(
                        EventKind::Kill,
                        sched.cell as u32,
                        iter as u32,
                        0,
                        vns(clocks[sched.cell].now()),
                    );
                    // The kill lands before this round's snapshot, so the
                    // round kill_iter-1 payloads — exactly the frozen
                    // death-frame the fan-in root captures and serves to
                    // the replacement — sit in `snapshots` (sync) or in
                    // `prev_snapshots` (async, after the last swap).
                    let death_frame = if async_mode { &prev_snapshots } else { &snapshots };
                    frozen_frame = death_frame.clone();
                    let frozen_neighbors: Vec<CellSnapshot> = grid
                        .neighbors(sched.cell)
                        .into_iter()
                        .map(|n| frozen_frame[n].clone())
                        .collect();
                    let mut repl = match &victim_cut {
                        Some(state) => CellEngine::from_state(
                            cfg,
                            make_data(sched.cell),
                            pool.clone(),
                            state,
                        ),
                        None => CellEngine::with_pool(
                            sched.cell,
                            cfg,
                            make_data(sched.cell),
                            pool.clone(),
                        ),
                    };
                    // Solo catch-up: the same frozen neighborhood for every
                    // iteration and no exchanges — a pure function of
                    // (seed, plan), same as the real replacement process.
                    let mut catchup = Profiler::new();
                    while repl.iterations_done() < sched.rejoin_round {
                        repl.run_iteration(&frozen_neighbors, &mut catchup);
                    }
                    profilers[sched.cell].merge(&catchup);
                    engines[sched.cell] = repl;
                }
            }
            // --- gather: snapshot, allgather (sync point), ingest -------
            snapshots.resize_with(cells, CellSnapshot::empty);
            let mut ready = vec![0.0f64; cells];
            let mut max_bytes = 0usize;
            for (c, engine) in engines.iter_mut().enumerate() {
                if absent(c) {
                    // Dead rank: nothing arrives; the root substitutes its
                    // cached round-(kill_iter-1) payload. In sync mode the
                    // recycled slot already holds it; under async the
                    // buffers alternate, so restore it explicitly.
                    if async_mode {
                        snapshots[c].copy_from(&frozen_frame[c]);
                    }
                    continue;
                }
                let t0 = Instant::now();
                engine.snapshot_into(&mut snapshots[c]);
                let host = t0.elapsed().as_secs_f64();
                let speed = speed_of(c);
                clocks[c].advance(host * speed + self.opts.per_iteration_overhead);
                ready[c] = clocks[c].now();
                max_bytes = max_bytes.max(snapshots[c].wire_size());
            }
            // Allgather: every *live* rank waits for the slowest of them,
            // then pays the transfer cost (a dead rank neither delays the
            // sync nor counts as the fastest participant).
            let live =
                || ready.iter().enumerate().filter(|&(c, _)| !absent(c)).map(|(_, &r)| r);
            let sync = live().fold(0.0, f64::max);
            let xfer = self.cost.allgather(cells, max_bytes);
            comm.allgather_bytes += max_bytes * cells;
            if let Some(sched) = fault {
                if absent(sched.cell) {
                    // The fan-in root (slave rank 1 / cell 0) substitutes
                    // the victim's frozen payload this round.
                    tels[0].record_at(
                        EventKind::Degraded,
                        sched.cell as u32,
                        iter as u32,
                        1,
                        vns(sync),
                    );
                    tels[0].metrics.degraded_iters.inc();
                }
            }
            if !async_mode || iter == 0 {
                // BSP (and the async bootstrap round, which blocks on its
                // own generation): wait for the slowest live rank, then pay
                // the transfer.
                comm.allgather_seconds += xfer + (sync - live().fold(f64::INFINITY, f64::min));
                for (c, clock) in clocks.iter_mut().enumerate() {
                    if absent(c) {
                        continue;
                    }
                    let before = clock.now();
                    clock.sync_to(sync);
                    clock.advance(xfer);
                    // Gather time as a rank perceives it: wait + transfer.
                    let d = clock.now() - before;
                    profilers[c].record(Routine::Gather, std::time::Duration::from_secs_f64(d));
                    let (cell, it) = (c as u32, iter as u32);
                    tels[c].record_at(
                        EventKind::ExchangeBegin,
                        cell,
                        it,
                        iter as u64,
                        vns(before),
                    );
                    tels[c].record_at(EventKind::GatherBegin, cell, it, 0, vns(before));
                    tels[c].record_at(EventKind::GatherEnd, cell, it, vns(d), vns(clock.now()));
                    tels[c].record_at(
                        EventKind::ExchangeComplete,
                        cell,
                        it,
                        iter as u64,
                        vns(clock.now()),
                    );
                    tels[c].metrics.gather_ns.observe(vns(d));
                    tels[c].metrics.exchange_wall_ns.add(vns(d));
                }
            } else {
                // Overlapped exchange: generation `iter` is merely *begun*
                // here; the rank blocks only until the in-flight generation
                // `iter-1` completes. The exposed wait is whatever part of
                // that exchange the previous compute phase failed to hide —
                // usually nothing.
                let min_live = live().fold(f64::INFINITY, f64::min);
                comm.allgather_seconds += (pending_complete - min_live).max(0.0);
                for (c, clock) in clocks.iter_mut().enumerate() {
                    if absent(c) {
                        continue;
                    }
                    let before = clock.now();
                    clock.sync_to(pending_complete);
                    let d = clock.now() - before;
                    profilers[c].record(Routine::Gather, std::time::Duration::from_secs_f64(d));
                    let (cell, it) = (c as u32, iter as u32);
                    tels[c].record_at(
                        EventKind::ExchangeBegin,
                        cell,
                        it,
                        iter as u64,
                        vns(ready[c]),
                    );
                    tels[c].record_at(EventKind::GatherBegin, cell, it, 0, vns(before));
                    tels[c].record_at(EventKind::GatherEnd, cell, it, vns(d), vns(clock.now()));
                    tels[c].record_at(
                        EventKind::ExchangeComplete,
                        cell,
                        it,
                        iter.saturating_sub(1) as u64,
                        vns(clock.now()),
                    );
                    tels[c].metrics.gather_ns.observe(vns(d));
                    tels[c]
                        .metrics
                        .exchange_wall_ns
                        .add(vns(pending_complete - prev_submit[c]));
                }
            }
            if async_mode {
                // Generation `iter` completes once every contribution is in
                // and the exchange thread (busy until `pending_complete`)
                // has shipped it.
                pending_complete = sync.max(pending_complete) + xfer;
                for (c, &r) in ready.iter().enumerate() {
                    if !absent(c) {
                        prev_submit[c] = r;
                    }
                }
            }

            // --- compute phases, measured on the host --------------------
            for (c, engine) in engines.iter_mut().enumerate() {
                if absent(c) {
                    // The replacement already trained through this round in
                    // its solo catch-up above.
                    continue;
                }
                // Which frame this rank trains against: under async,
                // iteration `i ≥ 1` consumes the completed generation-`i-1`
                // frame; the rejoiner's first live iteration consumes the
                // frozen death-frame instead (it never received generation
                // `rejoin - 1`), exactly like the distributed pipeline.
                let frame: &[CellSnapshot] = if async_mode
                    && fault.is_some_and(|s| c == s.cell && iter == s.rejoin_round)
                {
                    &frozen_frame
                } else if async_mode && iter >= 1 {
                    &prev_snapshots
                } else {
                    &snapshots
                };
                let neighbor_ids = grid.neighbors(c);
                neighbor_scratch.resize_with(neighbor_ids.len(), CellSnapshot::empty);
                for (slot, n) in neighbor_ids.into_iter().enumerate() {
                    neighbor_scratch[slot].copy_from(&frame[n]);
                }
                // Measure this iteration's phases into a scratch profiler,
                // then charge them (speed-scaled) to the rank clock.
                let mut scratch = Profiler::new();
                engine.ingest_neighbors(&neighbor_scratch);
                scratch.time(Routine::Mutate, || engine.mutate_phase());
                scratch.time(Routine::Train, || engine.train_phase());
                scratch.time(Routine::UpdateGenomes, || engine.update_phase());
                engine.advance_iteration();
                if fault.is_some_and(|s| c == s.cell && iter == s.rejoin_round) {
                    tels[c].record_at(
                        EventKind::Rejoin,
                        c as u32,
                        iter as u32,
                        0,
                        vns(clocks[c].now()),
                    );
                    tels[c].metrics.rejoined.inc();
                }
                let speed = speed_of(c);
                let spans = [
                    (Routine::Mutate, SpanKind::Mutate),
                    (Routine::Train, SpanKind::Train),
                    (Routine::UpdateGenomes, SpanKind::Update),
                ];
                for (r, span) in spans {
                    let host = scratch.total(r).as_secs_f64();
                    let t0 = clocks[c].now();
                    clocks[c].advance(host * speed);
                    profilers[c].record(r, std::time::Duration::from_secs_f64(host * speed));
                    let d = clocks[c].now() - t0;
                    let (cell, it) = (c as u32, iter as u32);
                    tels[c].record_at(span.begin_kind(), cell, it, 0, vns(t0));
                    tels[c].record_at(span.end_kind(), cell, it, vns(d), vns(clocks[c].now()));
                    if r == Routine::Train {
                        tels[c].metrics.train_ns.observe(vns(d));
                    }
                }
                tels[c].metrics.iterations.inc();
            }
            if let Some(sched) = fault {
                // The newest checkpoint cut the victim commits before dying
                // — captured on its *original* trajectory, exactly what the
                // replacement process restores from disk.
                if sched.resume_cut == Some(iter + 1) {
                    let mut state = engines[sched.cell].capture_state();
                    if async_mode {
                        // A cut at iteration `iter + 1` must carry the frame
                        // that iteration consumes: generation `iter`, i.e.
                        // this round's snapshots (captured before the swap).
                        state.exchange_frame = snapshots.clone();
                    }
                    victim_cut = Some(state);
                }
            }
            if async_mode {
                // This round's frame becomes next iteration's stale input.
                std::mem::swap(&mut snapshots, &mut prev_snapshots);
            }
            on_iteration(iter, &mut engines, if async_mode { &prev_snapshots } else { &[] });
        }

        // Flush the virtual-time journals (same per-rank JSONL layout as
        // the distributed drivers, so `lipizzaner trace` merges either).
        if let Some(dir) = cfg.telemetry.dir.as_deref() {
            for t in &tels {
                let path = Path::new(dir).join(format!("node{:02}.jsonl", t.rank()));
                if let Err(e) = t.write_journal(&path) {
                    eprintln!("[sim] telemetry journal write failed: {e}");
                }
            }
        }

        // Final result gather to the master (GLOBAL): after the slowest
        // slave finishes.
        let end = clocks.iter().map(|c| c.now()).fold(0.0, f64::max);
        let result_bytes = 1024usize; // fitness + mixture + profile rows
        let final_gather = self.cost.gather(cells + 1, result_bytes);
        comm.final_gather_seconds = final_gather;
        let wall = end + final_gather;

        // Build the combined report (cells + best, mean per-rank profile).
        let cell_results: Vec<CellResult> = engines
            .iter_mut()
            .enumerate()
            .map(|(i, e)| {
                let disc_pop = e.disc_population();
                CellResult {
                    cell: i,
                    coords: grid.coords(i),
                    gen_fitness: e.best_gen_fitness(),
                    disc_fitness: disc_pop.members()[disc_pop.best_index()].fitness,
                    mixture_weights: e.mixture().weights().to_vec(),
                }
            })
            .collect();
        let best_cell = cell_results
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.gen_fitness.partial_cmp(&b.gen_fitness).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map_or(0, |(i, _)| i);
        let mut mean_prof = Profiler::new();
        for p in &profilers {
            mean_prof.merge(p);
        }
        let mut profile = mean_prof.report();
        for row in &mut profile.rows {
            row.seconds /= cells as f64;
        }

        let report = TrainReport {
            driver: "cluster-sim".into(),
            grid: (grid.rows(), grid.cols()),
            iterations: engines.first().map_or(0, |e| e.iterations_done()),
            wall_seconds: wall,
            profile,
            cells: cell_results,
            best_cell,
        };
        SimOutcome {
            report,
            placement,
            rank_clocks: clocks.iter().map(|c| c.now()).collect(),
            comm,
            host_seconds: host_start.elapsed().as_secs_f64(),
            ensembles: engines.iter_mut().map(|e| e.ensemble()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipiz_tensor::Rng64;

    fn toy_data(cfg: &TrainConfig) -> Matrix {
        let mut rng = Rng64::seed_from(cfg.training.data_seed);
        rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
    }

    #[test]
    fn sim_run_completes_with_virtual_wall() {
        let cfg = TrainConfig::smoke(2);
        let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
        let outcome = sim.run(&cfg, |_| toy_data(&cfg));
        assert_eq!(outcome.report.driver, "cluster-sim");
        assert_eq!(outcome.report.cells.len(), 4);
        assert!(outcome.virtual_wall() > 0.0);
        assert!(outcome.host_seconds > 0.0);
        assert_eq!(outcome.rank_clocks.len(), 4);
        assert!(outcome.imbalance() >= 1.0);
    }

    #[test]
    fn sim_results_match_sequential_exactly() {
        let cfg = TrainConfig::smoke(2);
        let sim = SimulatedCluster::new(
            ClusterSpec::dedicated(1, 8),
            CommCost::cluster_uy(),
            SimulationOptions::default(),
        );
        let outcome = sim.run(&cfg, |_| toy_data(&cfg));

        let mut seq = lipiz_core::sequential::SequentialTrainer::new(&cfg, |_| toy_data(&cfg));
        let seq_report = seq.run();
        for (a, b) in outcome.report.cells.iter().zip(&seq_report.cells) {
            assert_eq!(a.gen_fitness, b.gen_fitness, "cell {}", a.cell);
            assert_eq!(a.mixture_weights, b.mixture_weights, "cell {}", a.cell);
        }
        assert_eq!(outcome.report.best_cell, seq_report.best_cell);
    }

    #[test]
    fn resumed_sim_matches_uninterrupted() {
        // Pause the simulated cluster after one iteration (capturing through
        // the per-iteration hook), resume from the states, and require the
        // final training results to agree exactly with an uninterrupted run.
        let mut cfg = TrainConfig::smoke(2);
        cfg.coevolution.iterations = 3;
        let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
        let reference = sim.run(&cfg, |_| toy_data(&cfg));

        let mut states: Vec<CellState> = Vec::new();
        let paused_cfg = cfg.clone().with_pause_after(1);
        let _ = sim.run_resumable(
            &paused_cfg,
            |_| toy_data(&paused_cfg),
            None,
            |iter, engines, _| {
                if iter == 0 {
                    states = engines.iter_mut().map(|e| e.capture_state()).collect();
                }
            },
        );
        assert_eq!(states.len(), 4, "pause hook never captured");

        let resumed = sim.run_resumable(&cfg, |_| toy_data(&cfg), Some(&states), |_, _, _| {});
        assert_eq!(resumed.report.iterations, 3);
        for (a, b) in resumed.report.cells.iter().zip(&reference.report.cells) {
            assert_eq!(a.gen_fitness, b.gen_fitness, "cell {}", a.cell);
            assert_eq!(a.disc_fitness, b.disc_fitness, "cell {}", a.cell);
            assert_eq!(a.mixture_weights, b.mixture_weights, "cell {}", a.cell);
        }
        assert_eq!(resumed.report.best_cell, reference.report.best_cell);
    }

    #[test]
    fn async_sim_matches_sequential_async_exactly() {
        // `--exchange async` is still a pure function of (seed, config):
        // the virtual cluster and the sequential trainer must agree
        // bit-for-bit — while both diverge from the sync trajectory.
        let cfg = TrainConfig::smoke(2).with_exchange(lipiz_core::ExchangeMode::Async);
        let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
        let outcome = sim.run(&cfg, |_| toy_data(&cfg));

        let mut seq = lipiz_core::sequential::SequentialTrainer::new(&cfg, |_| toy_data(&cfg));
        let seq_report = seq.run();
        for (a, b) in outcome.report.cells.iter().zip(&seq_report.cells) {
            assert_eq!(a.gen_fitness, b.gen_fitness, "cell {}", a.cell);
            assert_eq!(a.disc_fitness, b.disc_fitness, "cell {}", a.cell);
            assert_eq!(a.mixture_weights, b.mixture_weights, "cell {}", a.cell);
        }
        assert_eq!(outcome.report.best_cell, seq_report.best_cell);

        let sync_cfg = TrainConfig::smoke(2);
        let sync = sim.run(&sync_cfg, |_| toy_data(&sync_cfg));
        assert!(
            outcome
                .report
                .cells
                .iter()
                .zip(&sync.report.cells)
                .any(|(a, b)| a.gen_fitness != b.gen_fitness),
            "async run did not diverge from sync — staleness never applied"
        );
    }

    #[test]
    fn resumed_async_sim_matches_uninterrupted() {
        // The checkpointed exchange frame must carry the one-generation
        // pipeline across a pause: capture at iteration 0 (with the frame
        // iteration 1 consumes), resume, and require bit-identical results.
        let mut cfg = TrainConfig::smoke(2);
        cfg.coevolution.iterations = 3;
        let cfg = cfg.with_exchange(lipiz_core::ExchangeMode::Async);
        let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
        let reference = sim.run(&cfg, |_| toy_data(&cfg));

        let mut states: Vec<CellState> = Vec::new();
        let paused_cfg = cfg.clone().with_pause_after(1);
        let _ = sim.run_resumable(
            &paused_cfg,
            |_| toy_data(&paused_cfg),
            None,
            |iter, engines, frame| {
                if iter == 0 {
                    assert_eq!(frame.len(), 4, "async hook must expose the frame");
                    states = engines
                        .iter_mut()
                        .map(|e| {
                            let mut s = e.capture_state();
                            s.exchange_frame = frame.to_vec();
                            s
                        })
                        .collect();
                }
            },
        );
        assert_eq!(states.len(), 4, "pause hook never captured");

        let resumed = sim.run_resumable(&cfg, |_| toy_data(&cfg), Some(&states), |_, _, _| {});
        assert_eq!(resumed.report.iterations, 3);
        for (a, b) in resumed.report.cells.iter().zip(&reference.report.cells) {
            assert_eq!(a.gen_fitness, b.gen_fitness, "cell {}", a.cell);
            assert_eq!(a.disc_fitness, b.disc_fitness, "cell {}", a.cell);
            assert_eq!(a.mixture_weights, b.mixture_weights, "cell {}", a.cell);
        }
        assert_eq!(resumed.report.best_cell, reference.report.best_cell);
    }

    #[test]
    fn async_sim_hides_exchange_behind_compute() {
        // The point of the overlap: with a non-trivial cost model the async
        // run's gather time (exposed wait only) must be well below the sync
        // run's (full wait + transfer every round).
        let mut cfg = TrainConfig::smoke(2);
        cfg.coevolution.iterations = 4;
        let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
        let sync = sim.run(&cfg, |_| toy_data(&cfg));
        let async_cfg = cfg.clone().with_exchange(lipiz_core::ExchangeMode::Async);
        let overlapped = sim.run(&async_cfg, |_| toy_data(&async_cfg));
        assert!(
            overlapped.comm.allgather_seconds < sync.comm.allgather_seconds,
            "async gather {} not below sync {}",
            overlapped.comm.allgather_seconds,
            sync.comm.allgather_seconds
        );
    }

    #[test]
    fn virtual_wall_is_less_than_summed_compute() {
        // The whole point: distributed virtual time ≈ max over ranks, far
        // below the sum that the sequential baseline pays.
        let cfg = TrainConfig::smoke(3);
        let sim = SimulatedCluster::new(
            ClusterSpec::dedicated(1, 16),
            CommCost::free(),
            SimulationOptions::default(),
        );
        let outcome = sim.run(&cfg, |_| toy_data(&cfg));
        let summed: f64 = outcome.rank_clocks.iter().sum();
        assert!(
            outcome.virtual_wall() < summed / 2.0,
            "wall {} vs summed {}",
            outcome.virtual_wall(),
            summed
        );
    }

    #[test]
    fn jitter_changes_wall_but_not_results() {
        let cfg = TrainConfig::smoke(2);
        let run = |seed: u64| {
            let sim = SimulatedCluster::cluster_uy(SimulationOptions {
                run_seed: seed,
                ..Default::default()
            });
            sim.run(&cfg, |_| toy_data(&cfg))
        };
        let a = run(1);
        let b = run(2);
        // Different placements/jitter, same deterministic training results.
        for (x, y) in a.report.cells.iter().zip(&b.report.cells) {
            assert_eq!(x.gen_fitness, y.gen_fitness);
        }
        assert_ne!(a.placement, b.placement);
    }

    #[test]
    fn straggler_stretches_wall_but_not_results() {
        // Single iteration + zero comm cost: no BSP sync ever equalizes the
        // clocks, so the victim's 100x slowdown must show up as within-run
        // imbalance regardless of host-timing noise (all ranks are measured
        // in the same run, and the factor dwarfs any contention skew).
        let mut cfg = TrainConfig::smoke(2);
        cfg.coevolution.iterations = 1;
        let opts = SimulationOptions { per_iteration_overhead: 0.0, ..Default::default() };
        let base = SimulatedCluster::new(ClusterSpec::dedicated(1, 8), CommCost::free(), opts)
            .run(&cfg, |_| toy_data(&cfg));
        let slowed = SimulatedCluster::new(
            ClusterSpec::dedicated(1, 8),
            CommCost::free(),
            SimulationOptions { straggler: Some((2, 100.0)), ..opts },
        )
        .run(&cfg, |_| toy_data(&cfg));
        assert!(
            slowed.imbalance() > 3.0,
            "straggler not visible in imbalance: {} (clocks {:?})",
            slowed.imbalance(),
            slowed.rank_clocks
        );
        // The victim must own the slowest clock.
        let victim = slowed.rank_clocks[2];
        assert!(
            slowed.rank_clocks.iter().all(|&c| c <= victim),
            "victim is not the slowest rank: {:?}",
            slowed.rank_clocks
        );
        // Fault injection must not change the training outcome.
        for (a, b) in base.report.cells.iter().zip(&slowed.report.cells) {
            assert_eq!(a.gen_fitness, b.gen_fitness);
        }
    }

    #[test]
    fn telemetry_journals_live_on_the_virtual_clock() {
        // Telemetry must not perturb training, and the exported journals
        // must be stamped with virtual (not host) time: a simulated run
        // takes milliseconds of host time but its cost model charges far
        // more virtual time, so the last event's timestamp tracks the
        // virtual wall.
        let cfg = TrainConfig::smoke(2);
        let dir = std::env::temp_dir().join(format!("lipiz_sim_tel_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tel_cfg = cfg.clone().with_telemetry(dir.to_str().unwrap(), 0);
        let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
        let base = sim.run(&cfg, |_| toy_data(&cfg));
        let traced = sim.run(&tel_cfg, |_| toy_data(&tel_cfg));
        for (a, b) in base.report.cells.iter().zip(&traced.report.cells) {
            assert_eq!(a.gen_fitness, b.gen_fitness, "telemetry perturbed cell {}", a.cell);
        }

        let journals = lipiz_telemetry::read_journal_dir(&dir).unwrap();
        assert_eq!(journals.len(), 4, "one journal per simulated slave rank");
        let j = &journals[0];
        assert_eq!(j.rank, 1);
        let last_ns = j.events.last().unwrap().t_ns;
        let virtual_ns = (traced.virtual_wall() * 1e9) as u64;
        assert!(
            last_ns <= virtual_ns && last_ns > virtual_ns / 100,
            "timestamps not on the virtual clock: last {last_ns} vs wall {virtual_ns}"
        );
        assert!(j.events.iter().any(|e| e.kind == lipiz_telemetry::EventKind::TrainEnd));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gather_time_includes_wait_and_transfer() {
        let cfg = TrainConfig::smoke(2);
        let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
        let outcome = sim.run(&cfg, |_| toy_data(&cfg));
        assert!(outcome.report.profile.seconds(Routine::Gather) > 0.0);
        assert!(outcome.comm.allgather_bytes > 0);
    }
}
