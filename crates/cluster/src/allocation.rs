//! Slurm-like rank placement and per-rank memory accounting (Table II).

use crate::platform::ClusterSpec;
use lipiz_core::TrainConfig;
use lipiz_tensor::Rng64;
use serde::{Deserialize, Serialize};

/// Where one rank landed and how fast its core runs this job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankPlacement {
    /// WORLD rank (0 = master).
    pub rank: usize,
    /// Node index in the cluster.
    pub node: usize,
    /// Core index within the node.
    pub core: usize,
    /// Relative execution-time multiplier (1.0 = nominal; > 1 = slowed by
    /// co-located best-effort load).
    pub speed_factor: f64,
}

/// A complete placement of `ranks` onto the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Per-rank placements, rank order.
    pub ranks: Vec<RankPlacement>,
    /// Number of distinct nodes used.
    pub nodes_used: usize,
}

impl Placement {
    /// Place `n_ranks` ranks on `spec`, packing nodes core-by-core (the
    /// Slurm default for a single job). The best-effort queue is modeled as
    /// a per-node multiplicative speed factor drawn from
    /// `N(1, speed_jitter)` clamped to `[0.9, 1.3]`.
    ///
    /// # Panics
    /// Panics if the cluster has fewer cores than ranks.
    pub fn allocate(spec: &ClusterSpec, n_ranks: usize, seed: u64) -> Self {
        assert!(
            n_ranks <= spec.total_cores(),
            "cluster too small: {n_ranks} ranks > {} cores",
            spec.total_cores()
        );
        let mut rng = Rng64::seed_from(seed);
        // One speed factor per node for this job's lifetime.
        let node_speed: Vec<f64> = (0..spec.nodes)
            .map(|_| (1.0 + spec.speed_jitter * rng.gaussian()).clamp(0.9, 1.3))
            .collect();
        let mut ranks = Vec::with_capacity(n_ranks);
        for rank in 0..n_ranks {
            let node = rank / spec.cores_per_node;
            let core = rank % spec.cores_per_node;
            ranks.push(RankPlacement { rank, node, core, speed_factor: node_speed[node] });
        }
        let nodes_used = n_ranks.div_ceil(spec.cores_per_node);
        Self { ranks, nodes_used }
    }

    /// Speed factor of a rank.
    pub fn speed_of(&self, rank: usize) -> f64 {
        self.ranks[rank].speed_factor
    }

    /// Slowest speed factor in the placement (bounds the BSP critical path).
    pub fn worst_speed(&self) -> f64 {
        self.ranks.iter().map(|r| r.speed_factor).fold(1.0, f64::max)
    }
}

/// Estimated resident memory per rank in bytes, from first principles:
/// network parameters (center + scratch + Adam moments), the two
/// sub-populations of genomes, the local dataset copy, and batch buffers.
/// Used to regenerate Table II's memory column.
pub fn estimate_rank_memory_bytes(cfg: &TrainConfig) -> usize {
    let net = cfg.network;
    let g_params = net.latent_dim * net.hidden_units
        + net.hidden_units
        + net.hidden_layers.saturating_sub(1)
            * (net.hidden_units * net.hidden_units + net.hidden_units)
        + net.hidden_units * net.data_dim
        + net.data_dim;
    let d_params = net.data_dim * net.hidden_units
        + net.hidden_units
        + net.hidden_layers.saturating_sub(1)
            * (net.hidden_units * net.hidden_units + net.hidden_units)
        + net.hidden_units
        + 1;
    let s = cfg.subpopulation_size();
    let f32s = 4usize;
    // working nets + scratch nets + 2 Adam moment vectors each.
    let networks = (g_params + d_params) * (2 + 2) * f32s;
    let subpops = s * (g_params + d_params) * f32s;
    let dataset = cfg.training.dataset_size * net.data_dim * f32s;
    let batches = 4 * cfg.training.batch_size * net.data_dim * f32s;
    networks + subpops + dataset + batches
}

/// Total memory for an `m×m` grid job (all slaves + master), in MB —
/// the Table II row.
pub fn estimate_job_memory_mb(cfg: &TrainConfig) -> usize {
    let per_rank = estimate_rank_memory_bytes(cfg);
    // The master holds configuration + gathered results only; charge it a
    // single rank's buffer conservatively.
    let total = per_rank * (cfg.cells() + 1);
    total / (1024 * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_packs_cores_first() {
        let spec = ClusterSpec::dedicated(3, 4);
        let p = Placement::allocate(&spec, 10, 1);
        assert_eq!(p.ranks[0].node, 0);
        assert_eq!(p.ranks[3].node, 0);
        assert_eq!(p.ranks[4].node, 1);
        assert_eq!(p.ranks[9].node, 2);
        assert_eq!(p.nodes_used, 3);
    }

    #[test]
    fn dedicated_cluster_has_unit_speed() {
        let spec = ClusterSpec::dedicated(2, 8);
        let p = Placement::allocate(&spec, 8, 7);
        assert!(p.ranks.iter().all(|r| (r.speed_factor - 1.0).abs() < 1e-12));
        assert_eq!(p.worst_speed(), 1.0);
    }

    #[test]
    fn best_effort_jitter_is_seeded_and_bounded() {
        let spec = ClusterSpec::cluster_uy();
        let a = Placement::allocate(&spec, 17, 3);
        let b = Placement::allocate(&spec, 17, 3);
        assert_eq!(a, b, "same seed must give same placement");
        let c = Placement::allocate(&spec, 17, 4);
        assert_ne!(a, c, "different seeds should jitter differently");
        for r in &a.ranks {
            assert!((0.9..=1.3).contains(&r.speed_factor));
        }
    }

    #[test]
    #[should_panic(expected = "cluster too small")]
    fn oversubscription_panics() {
        Placement::allocate(&ClusterSpec::dedicated(1, 2), 3, 1);
    }

    #[test]
    fn memory_estimate_scales_with_grid() {
        let cfg2 = {
            let mut c = TrainConfig::paper_table1();
            c.grid = lipiz_core::GridConfig::square(2);
            c
        };
        let cfg4 = {
            let mut c = TrainConfig::paper_table1();
            c.grid = lipiz_core::GridConfig::square(4);
            c
        };
        let m2 = estimate_job_memory_mb(&cfg2);
        let m4 = estimate_job_memory_mb(&cfg4);
        assert!(m4 > m2 * 3, "4x4 should need ~3.4x the memory of 2x2: {m2} vs {m4}");
        // Paper-scale job memory lands in the same order of magnitude as
        // Table II (9216 MB for 2×2 with 60k MNIST): each rank holds the
        // 60k×784 dataset (~188 MB) plus networks.
        assert!(m2 > 500, "2x2 estimate suspiciously small: {m2} MB");
        assert!(m2 < 20_000, "2x2 estimate suspiciously large: {m2} MB");
    }

    #[test]
    fn rank_memory_dominated_by_dataset_at_paper_scale() {
        let cfg = TrainConfig::paper_table1();
        let total = estimate_rank_memory_bytes(&cfg);
        let dataset = cfg.training.dataset_size * cfg.network.data_dim * 4;
        assert!(dataset * 10 > total * 5, "dataset should be > half the footprint");
    }
}
