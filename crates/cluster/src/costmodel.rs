//! Hockney-model communication costs.

use serde::{Deserialize, Serialize};

/// α + βn point-to-point cost model with flat-tree collectives — the
/// standard first-order model for MPI performance on commodity clusters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommCost {
    /// Per-message latency in seconds (includes software stack overhead).
    pub alpha: f64,
    /// Per-byte transfer time in seconds (1/bandwidth).
    pub beta: f64,
}

impl CommCost {
    /// Defaults for a 10 GbE commodity cluster like Cluster-UY:
    /// ~60 µs MPI latency, ~10 Gbit/s effective bandwidth.
    pub fn cluster_uy() -> Self {
        Self { alpha: 60e-6, beta: 8.0 / 10.0e9 }
    }

    /// Zero-cost model (for isolating compute in ablations).
    pub fn free() -> Self {
        Self { alpha: 0.0, beta: 0.0 }
    }

    /// Point-to-point message of `bytes`.
    pub fn p2p(&self, bytes: usize) -> f64 {
        self.alpha + self.beta * bytes as f64
    }

    /// Flat gather of one `bytes`-sized contribution from each of `p - 1`
    /// non-root ranks.
    pub fn gather(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p - 1) as f64 * self.p2p(bytes)
    }

    /// Ring allgather: `p - 1` steps, each moving one rank's contribution —
    /// the algorithm production MPI libraries (and the paper's testbed)
    /// use for large payloads: `(p-1)·(α + β·bytes_each)`.
    pub fn allgather(&self, p: usize, bytes_each: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p - 1) as f64 * self.p2p(bytes_each)
    }

    /// Broadcast of `bytes` from the root to `p - 1` ranks (flat).
    pub fn bcast(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p - 1) as f64 * self.p2p(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_is_affine() {
        let c = CommCost { alpha: 1e-3, beta: 1e-6 };
        assert!((c.p2p(0) - 1e-3).abs() < 1e-12);
        assert!((c.p2p(1000) - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn collectives_vanish_for_single_rank() {
        let c = CommCost::cluster_uy();
        assert_eq!(c.gather(1, 1000), 0.0);
        assert_eq!(c.allgather(1, 1000), 0.0);
        assert_eq!(c.bcast(1, 1000), 0.0);
    }

    #[test]
    fn allgather_cost_grows_with_rank_count() {
        // The overhead term of Table III: more ranks ⇒ more communication
        // per iteration (ring allgather: linear in p for fixed per-rank
        // contribution).
        let c = CommCost::cluster_uy();
        let t4 = c.allgather(4, 1_000_000);
        let t16 = c.allgather(16, 1_000_000);
        assert!(t16 > 3.0 * t4, "t4={t4}, t16={t16}");
        assert!(c.allgather(2, 1_000_000) < t4);
    }

    #[test]
    fn free_model_is_free() {
        let c = CommCost::free();
        assert_eq!(c.allgather(16, 1 << 20), 0.0);
    }

    #[test]
    fn snapshot_scale_sanity() {
        // A paper-scale snapshot (~2.2 MB) across 16 ranks should cost
        // milliseconds-to-seconds, not hours — keeps gather in Table IV's
        // observed ballpark relative to compute.
        let c = CommCost::cluster_uy();
        let t = c.allgather(16, 2_200_000);
        assert!(t > 1e-3 && t < 120.0, "allgather estimate {t}s");
    }
}
