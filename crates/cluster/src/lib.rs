//! Virtual-time cluster simulator (the Cluster-UY substitute).
//!
//! The paper's experiments ran on the National Supercomputing Center
//! (Cluster-UY): 30 nodes × 40-core Xeon Gold 6138, Slurm, a best-effort
//! queue (§IV-B). This host has two cores, so 17 concurrent ranks cannot
//! demonstrate a 15× wall-clock speedup directly. This crate reproduces the
//! *scaling experiment* the honest way:
//!
//! * the **real training computation executes** — every cell engine runs
//!   exactly the same deterministic code as the sequential baseline and the
//!   threaded runtime (results are bit-identical, asserted in tests);
//! * each rank's compute segments are **measured on the host** and charged
//!   to a per-rank **virtual clock** ([`vtime`]), scaled by the node's
//!   best-effort speed factor ([`allocation`]);
//! * collectives synchronize the virtual clocks and charge a Hockney
//!   (α + βn) communication cost ([`costmodel`]) sized by the actual
//!   serialized snapshot bytes.
//!
//! Virtual wall-clock = `max` over ranks of their clock at the end, which
//! is precisely how a bulk-synchronous MPI program's wall time composes.
//! The shape of Tables III/IV (who wins, how speedup scales with grid
//! size, which routines parallelize) is therefore reproduced from real
//! measurements, while absolute minutes depend on this host's single-core
//! speed — the substitution DESIGN.md §1 documents.
//!
//! # Example
//!
//! ```
//! use lipiz_cluster::{SimulatedCluster, SimulationOptions};
//! use lipiz_core::TrainConfig;
//! use lipiz_tensor::Rng64;
//!
//! let cfg = TrainConfig::smoke(2);
//! let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
//! let outcome = sim.run(&cfg, |_| {
//!     let mut rng = Rng64::seed_from(cfg.training.data_seed);
//!     rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
//! });
//! // One virtual clock per slave rank (m² cells), all advanced.
//! assert_eq!(outcome.rank_clocks.len(), 4);
//! assert!(outcome.rank_clocks.iter().all(|&t| t > 0.0));
//! ```

pub mod allocation;
pub mod costmodel;
pub mod platform;
pub mod report;
pub mod sim;
pub mod vtime;

pub use allocation::{Placement, RankPlacement};
pub use costmodel::CommCost;
pub use platform::ClusterSpec;
pub use report::SimOutcome;
pub use sim::{SimulatedCluster, SimulationOptions};
pub use vtime::RankClock;
