//! Cluster hardware description.

use serde::{Deserialize, Serialize};

/// Static description of a compute cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Human-readable platform name.
    pub name: String,
    /// Number of compute nodes.
    pub nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
    /// RAM per node in MB.
    pub memory_per_node_mb: usize,
    /// Best-effort queue: std-dev of the per-node speed factor (0 for a
    /// dedicated machine). §IV-B: "the availability of computing resources
    /// on the same node is not guaranteed".
    pub speed_jitter: f64,
}

impl ClusterSpec {
    /// The Cluster-UY configuration from §IV-B: up to 30 servers with
    /// 40-core Xeon Gold 6138 and 128 GB RAM, best-effort queue.
    pub fn cluster_uy() -> Self {
        Self {
            name: "Cluster-UY".into(),
            nodes: 30,
            cores_per_node: 40,
            memory_per_node_mb: 128 * 1024,
            speed_jitter: 0.05,
        }
    }

    /// A dedicated (jitter-free) variant, for deterministic tests.
    pub fn dedicated(nodes: usize, cores_per_node: usize) -> Self {
        Self {
            name: "dedicated".into(),
            nodes,
            cores_per_node,
            memory_per_node_mb: 64 * 1024,
            speed_jitter: 0.0,
        }
    }

    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_uy_matches_paper() {
        let c = ClusterSpec::cluster_uy();
        assert_eq!(c.nodes, 30);
        assert_eq!(c.cores_per_node, 40);
        assert_eq!(c.memory_per_node_mb, 128 * 1024);
        assert_eq!(c.total_cores(), 1200);
        assert!(c.speed_jitter > 0.0, "best-effort queue implies jitter");
    }

    #[test]
    fn dedicated_has_no_jitter() {
        let c = ClusterSpec::dedicated(2, 8);
        assert_eq!(c.speed_jitter, 0.0);
        assert_eq!(c.total_cores(), 16);
    }
}
