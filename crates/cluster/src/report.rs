//! Simulation outcome types.

use crate::allocation::Placement;
use lipiz_core::{EnsembleModel, TrainReport};
use serde::{Deserialize, Serialize};

/// Communication statistics of a simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Total virtual seconds spent in allgather (max across ranks).
    pub allgather_seconds: f64,
    /// Bytes moved through allgather per rank over the whole run.
    pub allgather_bytes: usize,
    /// Virtual seconds of the final result gather.
    pub final_gather_seconds: f64,
}

/// Everything a simulated cluster run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// The combined training report (driver = "cluster-sim"; wall time is
    /// virtual).
    pub report: TrainReport,
    /// Where ranks were placed and their best-effort speed factors.
    pub placement: Placement,
    /// Final virtual clock of each slave rank (cell order).
    pub rank_clocks: Vec<f64>,
    /// Communication accounting.
    pub comm: CommStats,
    /// Host (real) seconds the simulation took to execute.
    pub host_seconds: f64,
    /// Each cell's final mixture-of-generators model (cell order) — the
    /// artifact a real run would persist. Carrying them here lets callers
    /// compare faulted replays byte-for-byte without re-running a
    /// sequential pass (which knows nothing about fault degradation).
    pub ensembles: Vec<EnsembleModel>,
}

impl SimOutcome {
    /// Virtual wall-clock of the run in seconds.
    pub fn virtual_wall(&self) -> f64 {
        self.report.wall_seconds
    }

    /// Load imbalance: slowest rank clock / fastest rank clock.
    pub fn imbalance(&self) -> f64 {
        let min = self.rank_clocks.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.rank_clocks.iter().copied().fold(0.0, f64::max);
        if min <= 0.0 {
            1.0
        } else {
            max / min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::ClusterSpec;
    use lipiz_core::profiling::Profiler;

    #[test]
    fn imbalance_of_uniform_clocks_is_one() {
        let outcome = SimOutcome {
            report: TrainReport {
                driver: "cluster-sim".into(),
                grid: (2, 2),
                iterations: 1,
                wall_seconds: 4.0,
                profile: Profiler::new().report(),
                cells: vec![],
                best_cell: 0,
            },
            placement: Placement::allocate(&ClusterSpec::dedicated(1, 8), 5, 1),
            rank_clocks: vec![2.0, 2.0, 2.0, 2.0],
            comm: CommStats::default(),
            host_seconds: 0.1,
            ensembles: vec![],
        };
        assert!((outcome.imbalance() - 1.0).abs() < 1e-12);
        assert_eq!(outcome.virtual_wall(), 4.0);
    }
}
