//! 2-D ring-of-Gaussians toy dataset.
//!
//! The standard mode-collapse benchmark: `k` Gaussian modes arranged on a
//! circle. A collapsed generator covers one or two modes; a healthy one
//! covers all of them. Used by the quickstart and mode-collapse examples
//! because it trains in seconds and coverage is measurable geometrically.

use lipiz_tensor::{Matrix, Rng64};

/// Ring-of-Gaussians dataset: `points` is `(n, 2)`, `modes[i]` is the mode
/// index each sample was drawn from.
#[derive(Debug, Clone, PartialEq)]
pub struct RingDataset {
    /// Sample coordinates, `(n, 2)`.
    pub points: Matrix,
    /// Mode index of each sample.
    pub modes: Vec<u8>,
    /// Number of modes on the ring.
    pub num_modes: usize,
    /// Ring radius.
    pub radius: f32,
    /// Per-mode standard deviation.
    pub sigma: f32,
}

impl RingDataset {
    /// Generate `n` samples over `num_modes` modes on a circle of `radius`
    /// with per-mode std `sigma`.
    pub fn generate(n: usize, num_modes: usize, radius: f32, sigma: f32, seed: u64) -> Self {
        assert!(num_modes > 0 && num_modes <= u8::MAX as usize, "mode count");
        let mut rng = Rng64::seed_from(seed);
        let mut points = Matrix::zeros(n, 2);
        let mut modes = Vec::with_capacity(n);
        for i in 0..n {
            let m = (i % num_modes) as u8;
            modes.push(m);
            let (cx, cy) = Self::mode_center(m as usize, num_modes, radius);
            points[(i, 0)] = cx + rng.normal(0.0, sigma);
            points[(i, 1)] = cy + rng.normal(0.0, sigma);
        }
        // Shuffle rows and labels with a shared permutation.
        let perm = rng.permutation(n);
        let points = points.gather_rows(&perm);
        let modes = perm.iter().map(|&i| modes[i]).collect();
        Self { points, modes, num_modes, radius, sigma }
    }

    /// Default 8-mode ring of radius 1 with σ = 0.05 (literature standard).
    pub fn standard(n: usize, seed: u64) -> Self {
        Self::generate(n, 8, 1.0, 0.05, seed)
    }

    /// Center of mode `m`.
    pub fn mode_center(m: usize, num_modes: usize, radius: f32) -> (f32, f32) {
        let theta = std::f32::consts::TAU * m as f32 / num_modes as f32;
        (radius * theta.cos(), radius * theta.sin())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    /// Assign each row of `samples` (`(n, 2)`) to its nearest mode and count
    /// how many distinct modes receive at least `min_share` of the samples.
    ///
    /// This is the coverage statistic reported by the mode-collapse example.
    pub fn covered_modes(&self, samples: &Matrix, min_share: f32) -> usize {
        assert_eq!(samples.cols(), 2, "ring samples are 2-D");
        if samples.rows() == 0 {
            return 0;
        }
        let mut counts = vec![0usize; self.num_modes];
        for r in 0..samples.rows() {
            let p = samples.row(r);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for m in 0..self.num_modes {
                let (cx, cy) = Self::mode_center(m, self.num_modes, self.radius);
                let d = (p[0] - cx).powi(2) + (p[1] - cy).powi(2);
                if d < best_d {
                    best_d = d;
                    best = m;
                }
            }
            counts[best] += 1;
        }
        let threshold = (min_share * samples.rows() as f32).max(1.0) as usize;
        counts.iter().filter(|&&c| c >= threshold).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_shapes() {
        let d = RingDataset::standard(64, 1);
        assert_eq!(d.points.shape(), (64, 2));
        assert_eq!(d.modes.len(), 64);
        assert_eq!(d.num_modes, 8);
    }

    #[test]
    fn samples_lie_near_the_ring() {
        let d = RingDataset::standard(200, 2);
        for r in 0..d.points.rows() {
            let p = d.points.row(r);
            let radius = (p[0] * p[0] + p[1] * p[1]).sqrt();
            assert!((radius - 1.0).abs() < 0.4, "sample {r} at radius {radius}");
        }
    }

    #[test]
    fn real_data_covers_all_modes() {
        let d = RingDataset::standard(400, 3);
        assert_eq!(d.covered_modes(&d.points.clone(), 0.02), 8);
    }

    #[test]
    fn collapsed_samples_cover_one_mode() {
        let d = RingDataset::standard(100, 4);
        // All samples exactly at mode 0's center.
        let (cx, cy) = RingDataset::mode_center(0, 8, 1.0);
        let mut collapsed = Matrix::zeros(50, 2);
        for r in 0..50 {
            collapsed[(r, 0)] = cx;
            collapsed[(r, 1)] = cy;
        }
        assert_eq!(d.covered_modes(&collapsed, 0.02), 1);
    }

    #[test]
    fn mode_centers_are_distinct() {
        let mut centers = vec![];
        for m in 0..8 {
            centers.push(RingDataset::mode_center(m, 8, 1.0));
        }
        for i in 0..8 {
            for j in (i + 1)..8 {
                let d = (centers[i].0 - centers[j].0).powi(2)
                    + (centers[i].1 - centers[j].1).powi(2);
                assert!(d > 0.1);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = RingDataset::standard(32, 9);
        let b = RingDataset::standard(32, 9);
        assert_eq!(a, b);
    }
}
