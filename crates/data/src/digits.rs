//! Procedural digit glyphs: stroke templates and a jittered rasterizer.
//!
//! Each digit is a set of polylines in the unit square (x rightward, y
//! downward). A sample is produced by applying a random affine jitter to the
//! strokes, rasterizing with an anti-aliased distance field, and adding pixel
//! noise — giving intra-class variation comparable in spirit to handwriting.

use crate::{IMAGE_DIM, IMAGE_SIDE};
use lipiz_tensor::Rng64;

/// A point in glyph space (unit square, y down).
pub type Pt = (f32, f32);

/// Jitter parameters applied per sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jitter {
    /// Max |translation| in glyph units (fraction of the box).
    pub translate: f32,
    /// Scale is drawn from `[1 - scale, 1 + scale]`.
    pub scale: f32,
    /// Max |rotation| in radians around the glyph center.
    pub rotate: f32,
    /// Stroke half-thickness is drawn from `[thickness_min, thickness_max]`
    /// (in glyph units).
    pub thickness_min: f32,
    /// Upper bound of the stroke half-thickness draw.
    pub thickness_max: f32,
    /// Std-dev of additive Gaussian pixel noise (intensity units).
    pub pixel_noise: f32,
}

impl Default for Jitter {
    fn default() -> Self {
        Self {
            translate: 0.08,
            scale: 0.12,
            rotate: 0.18,
            thickness_min: 0.045,
            thickness_max: 0.075,
            pixel_noise: 0.06,
        }
    }
}

impl Jitter {
    /// No jitter at all: canonical glyphs (useful for golden tests).
    pub fn none() -> Self {
        Self {
            translate: 0.0,
            scale: 0.0,
            rotate: 0.0,
            thickness_min: 0.06,
            thickness_max: 0.06,
            pixel_noise: 0.0,
        }
    }
}

/// Sample `n` points along an elliptic arc (angles in radians, y down).
fn arc(cx: f32, cy: f32, rx: f32, ry: f32, a0: f32, a1: f32, n: usize) -> Vec<Pt> {
    (0..=n)
        .map(|i| {
            let t = a0 + (a1 - a0) * i as f32 / n as f32;
            (cx + rx * t.cos(), cy + ry * t.sin())
        })
        .collect()
}

/// Stroke polylines for digit `d` in the unit square.
///
/// # Panics
/// Panics if `d > 9`.
pub fn strokes(d: u8) -> Vec<Vec<Pt>> {
    use std::f32::consts::PI;
    match d {
        0 => vec![arc(0.5, 0.5, 0.27, 0.38, 0.0, 2.0 * PI, 24)],
        1 => vec![vec![(0.38, 0.25), (0.52, 0.12), (0.52, 0.88)]],
        2 => vec![{
            let mut s = arc(0.5, 0.3, 0.24, 0.18, PI, 2.35 * PI, 12);
            s.extend_from_slice(&[(0.3, 0.85), (0.3, 0.88), (0.74, 0.88)]);
            s
        }],
        3 => vec![{
            let mut s = arc(0.46, 0.3, 0.22, 0.17, 0.75 * PI, 2.4 * PI, 12);
            s.extend(arc(0.46, 0.68, 0.24, 0.2, 1.65 * PI, 3.3 * PI, 12));
            s
        }],
        4 => {
            vec![vec![(0.62, 0.12), (0.28, 0.62), (0.78, 0.62)], vec![(0.62, 0.4), (0.62, 0.9)]]
        }
        5 => vec![{
            let mut s = vec![(0.72, 0.14), (0.34, 0.14), (0.32, 0.47)];
            s.extend(arc(0.48, 0.66, 0.22, 0.21, 1.45 * PI, 2.9 * PI, 14));
            s
        }],
        6 => vec![{
            let mut s = vec![(0.62, 0.12), (0.38, 0.45)];
            s.extend(arc(0.5, 0.68, 0.2, 0.2, 1.1 * PI, 3.05 * PI, 16));
            s
        }],
        7 => vec![vec![(0.28, 0.14), (0.74, 0.14), (0.42, 0.88)]],
        8 => vec![
            arc(0.5, 0.32, 0.19, 0.19, 0.0, 2.0 * PI, 16),
            arc(0.5, 0.7, 0.23, 0.19, 0.0, 2.0 * PI, 16),
        ],
        9 => vec![{
            let mut s = arc(0.5, 0.33, 0.2, 0.2, 0.0, 2.0 * PI, 16);
            s.extend_from_slice(&[(0.7, 0.33), (0.66, 0.88)]);
            s
        }],
        _ => panic!("digit out of range: {d}"),
    }
}

/// Squared distance from point `p` to segment `a`–`b`.
fn dist_sq_to_segment(p: Pt, a: Pt, b: Pt) -> f32 {
    let (px, py) = p;
    let (ax, ay) = a;
    let (bx, by) = b;
    let (dx, dy) = (bx - ax, by - ay);
    let len_sq = dx * dx + dy * dy;
    let t = if len_sq <= 1e-12 {
        0.0
    } else {
        (((px - ax) * dx + (py - ay) * dy) / len_sq).clamp(0.0, 1.0)
    };
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    (px - cx) * (px - cx) + (py - cy) * (py - cy)
}

/// Rasterize one jittered digit sample into a flat `[-1, 1]` image.
pub fn render_digit(d: u8, jitter: &Jitter, rng: &mut Rng64) -> Vec<f32> {
    let mut out = vec![0.0f32; IMAGE_DIM];
    render_digit_into(d, jitter, rng, &mut out);
    out
}

/// Rasterize into a caller-provided buffer of length [`IMAGE_DIM`].
///
/// # Panics
/// Panics if the buffer has the wrong length.
pub fn render_digit_into(d: u8, jitter: &Jitter, rng: &mut Rng64, out: &mut [f32]) {
    assert_eq!(out.len(), IMAGE_DIM, "image buffer length");
    // Intensity accumulator in [0, 1].
    out.iter_mut().for_each(|v| *v = 0.0);

    // Per-sample jitter draws.
    let tx = rng.uniform(-jitter.translate, jitter.translate + f32::EPSILON);
    let ty = rng.uniform(-jitter.translate, jitter.translate + f32::EPSILON);
    let sc = 1.0 + rng.uniform(-jitter.scale, jitter.scale + f32::EPSILON);
    let rot = rng.uniform(-jitter.rotate, jitter.rotate + f32::EPSILON);
    let half_t = rng.uniform(jitter.thickness_min, jitter.thickness_max + f32::EPSILON);
    let (sin_r, cos_r) = rot.sin_cos();

    let transform = |(x, y): Pt| -> Pt {
        // Rotate and scale around the glyph center, then translate.
        let (cx, cy) = (x - 0.5, y - 0.5);
        let rx = cos_r * cx - sin_r * cy;
        let ry = sin_r * cx + cos_r * cy;
        (0.5 + sc * rx + tx, 0.5 + sc * ry + ty)
    };

    let side = IMAGE_SIDE as f32;
    let feather = 1.5 / side; // anti-alias band beyond the stroke core
    let reach = half_t + feather;
    for poly in strokes(d) {
        let pts: Vec<Pt> = poly.into_iter().map(transform).collect();
        for seg in pts.windows(2) {
            let (a, b) = (seg[0], seg[1]);
            // Only touch pixels inside the segment's inflated bounding box.
            let x_min = (a.0.min(b.0) - reach).max(0.0);
            let x_max = (a.0.max(b.0) + reach).min(1.0);
            let y_min = (a.1.min(b.1) - reach).max(0.0);
            let y_max = (a.1.max(b.1) + reach).min(1.0);
            let px0 = (x_min * side) as usize;
            let px1 = ((x_max * side).ceil() as usize).min(IMAGE_SIDE);
            let py0 = (y_min * side) as usize;
            let py1 = ((y_max * side).ceil() as usize).min(IMAGE_SIDE);
            for py in py0..py1 {
                let y = (py as f32 + 0.5) / side;
                let row = &mut out[py * IMAGE_SIDE..(py + 1) * IMAGE_SIDE];
                for (px, pixel) in row.iter_mut().enumerate().take(px1).skip(px0) {
                    let x = (px as f32 + 0.5) / side;
                    let dist = dist_sq_to_segment((x, y), a, b).sqrt();
                    let intensity = if dist <= half_t {
                        1.0
                    } else if dist < reach {
                        1.0 - (dist - half_t) / feather
                    } else {
                        0.0
                    };
                    if intensity > *pixel {
                        *pixel = intensity;
                    }
                }
            }
        }
    }

    // Pixel noise, then map [0,1] intensity to [-1,1] (tanh range).
    for v in out.iter_mut() {
        let noisy = if jitter.pixel_noise > 0.0 {
            (*v + rng.normal(0.0, jitter.pixel_noise)).clamp(0.0, 1.0)
        } else {
            *v
        };
        *v = noisy * 2.0 - 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_digits_have_strokes() {
        for d in 0..10u8 {
            let s = strokes(d);
            assert!(!s.is_empty(), "digit {d} has no strokes");
            assert!(s.iter().all(|p| p.len() >= 2), "digit {d} has degenerate polyline");
            // All control points stay inside the unit box (with margin).
            for poly in &s {
                for &(x, y) in poly {
                    assert!((-0.1..=1.1).contains(&x), "digit {d} x {x}");
                    assert!((-0.1..=1.1).contains(&y), "digit {d} y {y}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digit_ten_panics() {
        strokes(10);
    }

    #[test]
    fn rendered_range_and_shape() {
        let mut rng = Rng64::seed_from(1);
        for d in 0..10u8 {
            let img = render_digit(d, &Jitter::default(), &mut rng);
            assert_eq!(img.len(), IMAGE_DIM);
            assert!(img.iter().all(|v| (-1.0..=1.0).contains(v)), "digit {d} out of range");
        }
    }

    #[test]
    fn glyphs_have_ink_and_background() {
        let mut rng = Rng64::seed_from(2);
        for d in 0..10u8 {
            let img = render_digit(d, &Jitter::none(), &mut rng);
            let ink = img.iter().filter(|&&v| v > 0.5).count();
            let bg = img.iter().filter(|&&v| v < -0.5).count();
            assert!(ink > 20, "digit {d}: only {ink} ink pixels");
            assert!(bg > 400, "digit {d}: only {bg} background pixels");
        }
    }

    #[test]
    fn canonical_glyphs_are_deterministic() {
        let mut a = Rng64::seed_from(3);
        let mut b = Rng64::seed_from(3);
        let ia = render_digit(5, &Jitter::default(), &mut a);
        let ib = render_digit(5, &Jitter::default(), &mut b);
        assert_eq!(ia, ib);
    }

    #[test]
    fn jitter_produces_variation() {
        let mut rng = Rng64::seed_from(4);
        let a = render_digit(3, &Jitter::default(), &mut rng);
        let b = render_digit(3, &Jitter::default(), &mut rng);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0, "two jittered samples are nearly identical: {diff}");
    }

    #[test]
    fn different_digits_look_different() {
        // Canonical (no-jitter) glyph pairs must differ substantially.
        let mut rng = Rng64::seed_from(5);
        let imgs: Vec<Vec<f32>> =
            (0..10u8).map(|d| render_digit(d, &Jitter::none(), &mut rng)).collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let diff: f32 = imgs[i].iter().zip(&imgs[j]).map(|(x, y)| (x - y).abs()).sum();
                assert!(diff > 20.0, "digits {i} and {j} are too similar: {diff}");
            }
        }
    }

    #[test]
    fn segment_distance_math() {
        // Point on the segment.
        assert!(dist_sq_to_segment((0.5, 0.0), (0.0, 0.0), (1.0, 0.0)) < 1e-12);
        // Perpendicular distance.
        let d = dist_sq_to_segment((0.5, 0.3), (0.0, 0.0), (1.0, 0.0));
        assert!((d - 0.09).abs() < 1e-6);
        // Beyond an endpoint: distance to the endpoint.
        let d = dist_sq_to_segment((2.0, 0.0), (0.0, 0.0), (1.0, 0.0));
        assert!((d - 1.0).abs() < 1e-6);
        // Degenerate segment.
        let d = dist_sq_to_segment((1.0, 1.0), (0.0, 0.0), (0.0, 0.0));
        assert!((d - 2.0).abs() < 1e-6);
    }
}
