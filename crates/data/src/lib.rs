//! Synthetic datasets and batch loading.
//!
//! The paper evaluates on MNIST (70,000 grayscale 28×28 handwritten digits).
//! This environment has no network access, so [`digits`] implements a
//! procedural substitute: each digit 0–9 is defined by stroke polylines and
//! rasterized to 28×28 with per-sample jitter (translation, scale, rotation,
//! stroke thickness, pixel noise). The result is a 784-dimensional, 10-mode
//! image distribution with the same tensor shapes, value range (`[-1, 1]`),
//! and per-batch FLOP cost as MNIST — which is what the paper's
//! scaling/efficiency evaluation exercises. DESIGN.md §1 documents the
//! substitution.
//!
//! [`ring`] additionally provides the classic 2-D ring-of-Gaussians toy
//! problem used by the mode-collapse example, and [`loader::BatchLoader`]
//! yields seeded, reshuffled mini-batches (Table I: batch size 100).
//!
//! # Example
//!
//! ```
//! use lipiz_data::{BatchLoader, SynthDigits};
//!
//! let digits = SynthDigits::generate(200, 42);
//! assert_eq!(digits.len(), 200);
//! // MNIST-shaped: 784 pixels per image, values in [-1, 1].
//! let mut loader = BatchLoader::new(digits.images, 50, 7);
//! let batch = loader.next_batch();
//! assert_eq!(batch.shape(), (50, 784));
//! assert!(batch.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
//! ```

pub mod digits;
pub mod image;
pub mod loader;
pub mod partition;
pub mod ring;
pub mod synth;

pub use loader::{BatchLoader, BatchLoaderState};
pub use partition::DataPartition;
pub use ring::RingDataset;
pub use synth::SynthDigits;

/// Side length of the generated images (MNIST-compatible).
pub const IMAGE_SIDE: usize = 28;
/// Flattened image dimension (28 × 28).
pub const IMAGE_DIM: usize = IMAGE_SIDE * IMAGE_SIDE;
/// Number of digit classes / modes.
pub const NUM_CLASSES: usize = 10;
