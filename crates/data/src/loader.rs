//! Seeded mini-batch loader.

use lipiz_tensor::{Matrix, Rng64, Rng64State};

/// The position of a [`BatchLoader`] inside its shuffled epoch stream — the
/// "data-ring cursor" a checkpoint must carry. The dataset itself is *not*
/// part of the state (every rank re-derives it from the config), but the
/// current permutation, cursor, epoch count and shuffle-RNG state are, so a
/// restored loader emits exactly the batches the original would have.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchLoaderState {
    /// Current epoch's sample permutation.
    pub order: Vec<usize>,
    /// Next unread position within `order`.
    pub cursor: usize,
    /// Full epochs completed so far.
    pub epoch: u64,
    /// Shuffle-RNG stream state.
    pub rng: Rng64State,
}

/// Cycles through a dataset in shuffled mini-batches (Table I: batch 100).
///
/// Each epoch draws a fresh permutation from the loader's own RNG stream, so
/// batch sequences are reproducible given `(data, batch_size, seed)` and
/// independent of any other random draws in the trainer.
#[derive(Debug, Clone)]
pub struct BatchLoader {
    data: Matrix,
    batch_size: usize,
    order: Vec<usize>,
    cursor: usize,
    epoch: u64,
    rng: Rng64,
    /// Recycled index buffer for batch assembly (not part of the state —
    /// purely scratch).
    idx_scratch: Vec<usize>,
}

impl BatchLoader {
    /// Create a loader over `data` (row-per-sample).
    ///
    /// # Panics
    /// Panics if `batch_size == 0` or the dataset is empty.
    pub fn new(data: Matrix, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(data.rows() > 0, "empty dataset");
        let mut rng = Rng64::seed_from(seed);
        let order = rng.permutation(data.rows());
        Self { data, batch_size, order, cursor: 0, epoch: 0, rng, idx_scratch: Vec::new() }
    }

    /// Capture the loader's cursor state (see [`BatchLoaderState`]).
    pub fn state(&self) -> BatchLoaderState {
        BatchLoaderState {
            order: self.order.clone(),
            cursor: self.cursor,
            epoch: self.epoch,
            rng: self.rng.state(),
        }
    }

    /// Capture into an existing [`BatchLoaderState`], reusing its
    /// permutation buffer (the allocation-free path of a double-buffered
    /// checkpoint capture).
    pub fn state_into(&self, out: &mut BatchLoaderState) {
        out.order.clear();
        out.order.extend_from_slice(&self.order);
        out.cursor = self.cursor;
        out.epoch = self.epoch;
        out.rng = self.rng.state();
    }

    /// Rebuild a loader over `data` from a captured [`BatchLoader::state`].
    /// The restored loader's batch stream continues exactly where the
    /// captured one left off.
    ///
    /// # Panics
    /// Panics if the state is inconsistent with the dataset: the permutation
    /// must cover exactly `data.rows()` samples and the cursor must lie
    /// within it (a corrupt checkpoint must never restore partially).
    pub fn from_state(data: Matrix, batch_size: usize, state: BatchLoaderState) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert_eq!(state.order.len(), data.rows(), "loader state permutation length");
        assert!(state.cursor <= state.order.len(), "loader state cursor out of range");
        assert!(
            state.order.iter().all(|&i| i < data.rows()),
            "loader state permutation index out of range"
        );
        Self {
            data,
            batch_size,
            order: state.order,
            cursor: state.cursor,
            epoch: state.epoch,
            rng: Rng64::from_state(state.rng),
            idx_scratch: Vec::new(),
        }
    }

    /// Number of samples in the underlying dataset.
    pub fn len(&self) -> usize {
        self.data.rows()
    }

    /// True when the dataset is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.rows() == 0
    }

    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of full epochs completed so far.
    pub fn epochs_completed(&self) -> u64 {
        self.epoch
    }

    /// Number of batches per epoch (floor; a trailing partial batch wraps
    /// into the next epoch's permutation, matching common GAN loaders).
    pub fn batches_per_epoch(&self) -> usize {
        (self.data.rows() / self.batch_size).max(1)
    }

    /// Next mini-batch of exactly `batch_size` rows.
    pub fn next_batch(&mut self) -> Matrix {
        let mut out = Matrix::default();
        self.next_batch_into(&mut out);
        out
    }

    /// [`BatchLoader::next_batch`] into a recycled buffer — identical batch
    /// stream (same shuffle draws, same rows), zero heap allocations once
    /// `out` and the internal scratch have warmed up. The epoch reshuffle
    /// refills the standing permutation in place.
    pub fn next_batch_into(&mut self, out: &mut Matrix) {
        let n = self.data.rows();
        self.idx_scratch.clear();
        while self.idx_scratch.len() < self.batch_size {
            if self.cursor >= n {
                // In-place reshuffle: refill 0..n, then the same
                // Fisher-Yates draws `Rng64::permutation` performs.
                self.order.clear();
                self.order.extend(0..n);
                self.rng.shuffle(&mut self.order);
                self.cursor = 0;
                self.epoch += 1;
            }
            let take = (self.batch_size - self.idx_scratch.len()).min(n - self.cursor);
            self.idx_scratch.extend_from_slice(&self.order[self.cursor..self.cursor + take]);
            self.cursor += take;
        }
        out.resize_buffer(self.batch_size, self.data.cols());
        for (i, &idx) in self.idx_scratch.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.data.row(idx));
        }
    }

    /// A fixed evaluation batch: the first `n` rows in storage order
    /// (not shuffled; stable across calls).
    pub fn eval_batch(&self, n: usize) -> Matrix {
        self.data.slice_rows(0, n.min(self.data.rows()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, 2);
        for i in 0..n {
            m[(i, 0)] = i as f32;
            m[(i, 1)] = -(i as f32);
        }
        m
    }

    #[test]
    fn batches_have_requested_size() {
        let mut loader = BatchLoader::new(toy_data(10), 4, 1);
        for _ in 0..5 {
            assert_eq!(loader.next_batch().shape(), (4, 2));
        }
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let mut loader = BatchLoader::new(toy_data(12), 4, 2);
        let mut seen = vec![];
        for _ in 0..3 {
            let b = loader.next_batch();
            for r in 0..4 {
                seen.push(b[(r, 0)] as usize);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
        assert_eq!(loader.epochs_completed(), 0);
        loader.next_batch();
        assert_eq!(loader.epochs_completed(), 1);
    }

    #[test]
    fn wraps_partial_epochs() {
        // 10 samples, batch 4: batches straddle epoch boundaries without
        // duplicating a sample within one epoch's permutation.
        let mut loader = BatchLoader::new(toy_data(10), 4, 3);
        let mut count = std::collections::HashMap::new();
        for _ in 0..5 {
            // 20 samples = 2 full epochs
            let b = loader.next_batch();
            for r in 0..4 {
                *count.entry(b[(r, 0)] as usize).or_insert(0usize) += 1;
            }
        }
        for i in 0..10 {
            assert_eq!(count[&i], 2, "sample {i} not seen exactly twice");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = BatchLoader::new(toy_data(16), 4, 7);
        let mut b = BatchLoader::new(toy_data(16), 4, 7);
        for _ in 0..6 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn different_seeds_shuffle_differently() {
        let mut a = BatchLoader::new(toy_data(64), 8, 1);
        let mut b = BatchLoader::new(toy_data(64), 8, 2);
        let ba = a.next_batch();
        let bb = b.next_batch();
        assert_ne!(ba, bb);
    }

    #[test]
    fn state_round_trip_continues_the_batch_stream() {
        // Capture mid-epoch (cursor inside a permutation, shuffle RNG
        // advanced) and restore over a fresh copy of the data: the batch
        // streams must agree exactly, across epoch boundaries.
        let mut a = BatchLoader::new(toy_data(10), 4, 11);
        for _ in 0..3 {
            a.next_batch(); // crosses into epoch 1 with a mid-epoch cursor
        }
        let mut b = BatchLoader::from_state(toy_data(10), 4, a.state());
        assert_eq!(a.epochs_completed(), b.epochs_completed());
        for _ in 0..12 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    #[should_panic(expected = "permutation length")]
    fn state_with_wrong_dataset_size_panics() {
        let loader = BatchLoader::new(toy_data(10), 4, 1);
        let _ = BatchLoader::from_state(toy_data(8), 4, loader.state());
    }

    #[test]
    #[should_panic(expected = "cursor out of range")]
    fn state_with_bad_cursor_panics() {
        let loader = BatchLoader::new(toy_data(6), 2, 1);
        let mut state = loader.state();
        state.cursor = 7;
        let _ = BatchLoader::from_state(toy_data(6), 2, state);
    }

    #[test]
    fn eval_batch_is_stable() {
        let loader = BatchLoader::new(toy_data(10), 4, 5);
        assert_eq!(loader.eval_batch(3), loader.eval_batch(3));
        assert_eq!(loader.eval_batch(100).rows(), 10);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        BatchLoader::new(toy_data(4), 0, 1);
    }

    #[test]
    fn batches_per_epoch_floor() {
        let loader = BatchLoader::new(toy_data(10), 4, 1);
        assert_eq!(loader.batches_per_epoch(), 2);
        let loader = BatchLoader::new(toy_data(3), 4, 1);
        assert_eq!(loader.batches_per_epoch(), 1);
    }
}
