//! Data-dieting partitions: give each grid cell a *subset* of the training
//! data.
//!
//! "Data dieting in GAN training" (Toutouh, Hemberg, O'Reilly, 2020 — the
//! paper's reference [20]) trains Lipizzaner cells on reduced data. The
//! schemes here plug into any driver's `make_data` closure:
//!
//! ```
//! use lipiz_data::partition::DataPartition;
//! use lipiz_data::SynthDigits;
//!
//! let digits = SynthDigits::generate(100, 7);
//! let scheme = DataPartition::Shards;
//! // Cell 2 of a 2×2 grid gets the third contiguous quarter.
//! let rows = scheme.rows_for_cell(digits.len(), 4, 2, 99);
//! let local = digits.images.gather_rows(&rows);
//! assert_eq!(local.rows(), 25);
//! ```

use lipiz_tensor::{Matrix, Rng64};

/// How a cell's local dataset is carved from the full training set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataPartition {
    /// Every cell sees the full dataset (the paper's §IV setup).
    Full,
    /// Contiguous, disjoint shards: cell `i` of `k` gets rows
    /// `[i·n/k, (i+1)·n/k)`. The union covers the dataset exactly once.
    Shards,
    /// Each cell draws an independent seeded random subset of the given
    /// fraction (with distinct rows within one cell).
    RandomSubset {
        /// Fraction of the dataset each cell keeps, in `(0, 1]`.
        fraction: f32,
    },
}

impl DataPartition {
    /// Row indices of cell `cell`'s local data, out of `total` rows and
    /// `cells` grid cells. Deterministic given `(scheme, total, cells,
    /// cell, seed)`.
    ///
    /// # Panics
    /// Panics if `cell >= cells`, `cells == 0`, or the scheme would yield
    /// an empty selection.
    pub fn rows_for_cell(
        &self,
        total: usize,
        cells: usize,
        cell: usize,
        seed: u64,
    ) -> Vec<usize> {
        assert!(cells > 0, "no cells");
        assert!(cell < cells, "cell {cell} out of {cells}");
        match *self {
            DataPartition::Full => (0..total).collect(),
            DataPartition::Shards => {
                let start = cell * total / cells;
                let end = (cell + 1) * total / cells;
                assert!(
                    end > start,
                    "shard for cell {cell} is empty ({total} rows / {cells} cells)"
                );
                (start..end).collect()
            }
            DataPartition::RandomSubset { fraction } => {
                assert!(
                    fraction > 0.0 && fraction <= 1.0,
                    "fraction must be in (0, 1]: {fraction}"
                );
                let k = ((total as f32 * fraction).round() as usize).clamp(1, total);
                // Derive a per-cell stream so subsets are independent.
                let mut rng = Rng64::seed_from(
                    seed ^ (cell as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut rows = rng.sample_distinct(total, k);
                rows.sort_unstable();
                rows
            }
        }
    }

    /// Materialize cell `cell`'s local matrix from the full dataset.
    pub fn slice_for_cell(
        &self,
        full: &Matrix,
        cells: usize,
        cell: usize,
        seed: u64,
    ) -> Matrix {
        let rows = self.rows_for_cell(full.rows(), cells, cell, seed);
        full.gather_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_partition_is_identity() {
        let rows = DataPartition::Full.rows_for_cell(10, 4, 3, 1);
        assert_eq!(rows, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shards_are_disjoint_and_cover() {
        let total = 103; // deliberately not divisible
        let cells = 4;
        let mut seen = vec![false; total];
        for c in 0..cells {
            for r in DataPartition::Shards.rows_for_cell(total, cells, c, 1) {
                assert!(!seen[r], "row {r} in two shards");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "rows not covered");
    }

    #[test]
    fn random_subset_size_and_determinism() {
        let scheme = DataPartition::RandomSubset { fraction: 0.25 };
        let a = scheme.rows_for_cell(100, 4, 1, 7);
        let b = scheme.rows_for_cell(100, 4, 1, 7);
        assert_eq!(a, b, "not deterministic");
        assert_eq!(a.len(), 25);
        let other_cell = scheme.rows_for_cell(100, 4, 2, 7);
        assert_ne!(a, other_cell, "cells got identical subsets");
        // Distinct and in-range.
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
        assert!(a.iter().all(|&r| r < 100));
    }

    #[test]
    fn slice_materializes_expected_rows() {
        let mut m = Matrix::zeros(8, 2);
        for r in 0..8 {
            m[(r, 0)] = r as f32;
        }
        let local = DataPartition::Shards.slice_for_cell(&m, 4, 1, 0);
        assert_eq!(local.rows(), 2);
        assert_eq!(local[(0, 0)], 2.0);
        assert_eq!(local[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn cell_out_of_range_panics() {
        DataPartition::Full.rows_for_cell(10, 2, 2, 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        DataPartition::RandomSubset { fraction: 0.0 }.rows_for_cell(10, 2, 0, 0);
    }

    #[test]
    fn tiny_fraction_keeps_at_least_one_row() {
        let rows = DataPartition::RandomSubset { fraction: 0.001 }.rows_for_cell(10, 2, 0, 0);
        assert_eq!(rows.len(), 1);
    }
}
