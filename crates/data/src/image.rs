//! Image inspection helpers: ASCII rendering and PGM export.

use crate::IMAGE_SIDE;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Render one flat `[-1, 1]` image as ASCII art (darker = more ink).
pub fn to_ascii(image: &[f32], side: usize) -> String {
    assert_eq!(image.len(), side * side, "image length");
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut out = String::with_capacity(side * (side + 1));
    for row in image.chunks_exact(side) {
        for &v in row {
            let intensity = ((v + 1.0) / 2.0).clamp(0.0, 1.0);
            let idx = (intensity * (RAMP.len() - 1) as f32).round() as usize;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Render a 28×28 image (the workspace default) as ASCII art.
pub fn to_ascii_28(image: &[f32]) -> String {
    to_ascii(image, IMAGE_SIDE)
}

/// Write a gallery of flat `[-1, 1]` images as a binary PGM file, arranged
/// in a `grid_cols`-wide grid with 1-pixel separators.
pub fn write_pgm(
    path: &Path,
    images: &[&[f32]],
    side: usize,
    grid_cols: usize,
) -> io::Result<()> {
    assert!(grid_cols > 0, "grid_cols must be positive");
    let n = images.len();
    let rows = n.div_ceil(grid_cols);
    let w = grid_cols * (side + 1) - 1;
    let h = rows * (side + 1) - 1;
    let mut canvas = vec![0u8; w * h];
    for (i, img) in images.iter().enumerate() {
        assert_eq!(img.len(), side * side, "image {i} length");
        let gx = (i % grid_cols) * (side + 1);
        let gy = (i / grid_cols) * (side + 1);
        for y in 0..side {
            for x in 0..side {
                let v = ((img[y * side + x] + 1.0) / 2.0).clamp(0.0, 1.0);
                canvas[(gy + y) * w + gx + x] = (v * 255.0) as u8;
            }
        }
    }
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    writeln!(out, "P5\n{w} {h}\n255")?;
    out.write_all(&canvas)?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digits::{render_digit, Jitter};
    use lipiz_tensor::Rng64;

    #[test]
    fn ascii_shape() {
        let img = vec![-1.0f32; 16];
        let art = to_ascii(&img, 4);
        assert_eq!(art.lines().count(), 4);
        assert!(art.lines().all(|l| l.len() == 4));
        assert!(art.chars().filter(|c| *c != '\n').all(|c| c == ' '));
    }

    #[test]
    fn ascii_uses_ramp_extremes() {
        let img = vec![-1.0f32, 1.0, 0.0, 0.5];
        let art = to_ascii(&img, 2);
        assert!(art.contains(' '));
        assert!(art.contains('@'));
    }

    #[test]
    fn rendered_digit_ascii_has_ink() {
        let mut rng = Rng64::seed_from(1);
        let img = render_digit(0, &Jitter::none(), &mut rng);
        let art = to_ascii_28(&img);
        let ink = art.chars().filter(|&c| c == '@' || c == '%').count();
        assert!(ink > 20, "digit 0 renders to blank ascii:\n{art}");
    }

    #[test]
    fn pgm_round_trip_header() {
        let dir = std::env::temp_dir().join("lipiz_data_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gallery.pgm");
        let img = vec![0.0f32; 16];
        write_pgm(&path, &[&img, &img, &img], 4, 2).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header = String::from_utf8_lossy(&bytes[..20]);
        assert!(header.starts_with("P5"), "bad header: {header}");
        // 2 cols => width 9; 2 rows => height 9.
        assert!(header.contains("9 9"), "bad dims: {header}");
        std::fs::remove_file(&path).ok();
    }
}
