//! The synthetic MNIST-like dataset (labelled digit images).

use crate::digits::{render_digit_into, Jitter};
use crate::{IMAGE_DIM, NUM_CLASSES};
use lipiz_tensor::{Matrix, Rng64};

/// A labelled set of synthetic digit images.
///
/// `images` is `(n, 784)` in `[-1, 1]`; `labels[i]` is the digit class of
/// row `i`. Generation is fully determined by `(n, seed, jitter)`, so every
/// rank of a distributed run can rebuild the same dataset locally — the
/// distributed-memory analogue of each slave downloading MNIST in Fig. 3.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthDigits {
    /// Row-per-sample image matrix, values in `[-1, 1]`.
    pub images: Matrix,
    /// Digit class (0–9) of each row.
    pub labels: Vec<u8>,
}

impl SynthDigits {
    /// Generate `n` samples with balanced, shuffled classes.
    pub fn generate(n: usize, seed: u64) -> Self {
        Self::generate_with(n, seed, &Jitter::default())
    }

    /// Generate with explicit jitter parameters.
    pub fn generate_with(n: usize, seed: u64, jitter: &Jitter) -> Self {
        let mut rng = Rng64::seed_from(seed);
        // Balanced class sequence, then shuffled.
        let mut labels: Vec<u8> = (0..n).map(|i| (i % NUM_CLASSES) as u8).collect();
        rng.shuffle(&mut labels);
        let mut images = Matrix::zeros(n, IMAGE_DIM);
        for (i, &d) in labels.iter().enumerate() {
            render_digit_into(d, jitter, &mut rng, images.row_mut(i));
        }
        Self { images, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Split off the first `n_train` samples as a training set, keeping the
    /// rest as a test set (the paper uses a 60k/10k split).
    ///
    /// # Panics
    /// Panics if `n_train > len`.
    pub fn split(self, n_train: usize) -> (SynthDigits, SynthDigits) {
        assert!(n_train <= self.len(), "split beyond dataset size");
        let train_images = self.images.slice_rows(0, n_train);
        let test_images = self.images.slice_rows(n_train, self.len());
        let (train_labels, test_labels) = {
            let mut l = self.labels;
            let rest = l.split_off(n_train);
            (l, rest)
        };
        (
            SynthDigits { images: train_images, labels: train_labels },
            SynthDigits { images: test_images, labels: test_labels },
        )
    }

    /// Count of samples per class.
    pub fn class_histogram(&self) -> [usize; NUM_CLASSES] {
        let mut h = [0usize; NUM_CLASSES];
        for &l in &self.labels {
            h[l as usize] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SynthDigits::generate(50, 7);
        let b = SynthDigits::generate(50, 7);
        assert_eq!(a, b);
        let c = SynthDigits::generate(50, 8);
        assert_ne!(a.images.as_slice(), c.images.as_slice());
    }

    #[test]
    fn classes_are_balanced() {
        let d = SynthDigits::generate(100, 1);
        let h = d.class_histogram();
        assert!(h.iter().all(|&c| c == 10), "histogram {h:?}");
    }

    #[test]
    fn labels_are_shuffled() {
        let d = SynthDigits::generate(100, 2);
        // The unshuffled sequence would be 0,1,2,...; require a deviation.
        let in_order =
            d.labels.iter().enumerate().filter(|(i, &l)| (i % 10) as u8 == l).count();
        assert!(in_order < 50, "labels look unshuffled: {in_order}/100 in order");
    }

    #[test]
    fn split_preserves_rows() {
        let d = SynthDigits::generate(30, 3);
        let row5 = d.images.row(5).to_vec();
        let label5 = d.labels[5];
        let (train, test) = d.split(20);
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 10);
        assert_eq!(train.images.row(5), &row5[..]);
        assert_eq!(train.labels[5], label5);
    }

    #[test]
    #[should_panic(expected = "split beyond")]
    fn oversized_split_panics() {
        SynthDigits::generate(10, 4).split(11);
    }

    #[test]
    fn values_in_tanh_range() {
        let d = SynthDigits::generate(20, 5);
        assert!(d.images.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
    }
}
