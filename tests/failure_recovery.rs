//! Elastic recovery, end to end with real OS processes and a real SIGKILL:
//! a slave killed mid-run must be detected by the master's heartbeat
//! deadline, named in the recovery logs (rank, exit status, stderr), and
//! replaced — the run restores from the last committed checkpoint and
//! completes with a valid ensemble, byte-identical to a run nothing ever
//! interrupted.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lipizzaner::core::persist;

const BIN: &str = env!("CARGO_BIN_EXE_lipizzaner");
/// Whole-scenario deadline: detection + relaunch + the resumed run.
const DEADLINE: Duration = Duration::from_secs(120);

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lipiz_failure_recovery").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test workdir");
    dir
}

fn wait_with_deadline(child: &mut std::process::Child, what: &str) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("poll child") {
            return status;
        }
        if start.elapsed() > DEADLINE {
            let _ = child.kill();
            let _ = child.wait();
            panic!("{what} exceeded the {DEADLINE:?} deadline");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn sigkilled_slave_is_replaced_and_the_run_completes_bit_exactly() {
    let dir = workdir("sigkill");
    let ckpt = dir.join("ckpt");
    let out = dir.join("recovered.lpz");

    // Long enough that the kill lands mid-run even on a fast machine; the
    // same shape trains in a few seconds sequentially for the reference.
    let flags = ["--tiny", "--grid", "2", "--iterations", "2000", "--batches", "2"];

    let mut master_args = vec![
        "launch",
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "5",
        "--out",
        out.to_str().unwrap(),
    ];
    master_args.extend_from_slice(&flags);
    let mut master = Command::new(BIN)
        .args(&master_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn master");

    // Stream the master's stdout: collect the spawned slave pids, keep
    // draining in the background, and keep everything for assertions.
    let stdout_buf: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
    let first_pid = {
        let pipe = master.stdout.take().expect("master stdout");
        let sink = Arc::clone(&stdout_buf);
        let mut lines = BufReader::new(pipe).lines();
        let deadline = Instant::now() + DEADLINE;
        let mut pid = None;
        while pid.is_none() {
            assert!(Instant::now() < deadline, "master never spawned a slave");
            let line = lines.next().expect("master stdout closed early").expect("read line");
            if let Some(rest) = line.strip_prefix("spawned slave pid=") {
                pid = Some(rest.trim().to_string());
            }
            sink.lock().unwrap().push_str(&line);
            sink.lock().unwrap().push('\n');
        }
        let sink = Arc::clone(&stdout_buf);
        std::thread::spawn(move || {
            for line in lines.map_while(Result::ok) {
                let mut buf = sink.lock().unwrap();
                buf.push_str(&line);
                buf.push('\n');
            }
        });
        pid.unwrap()
    };
    let stderr_buf: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
    {
        let pipe = master.stderr.take().expect("master stderr");
        let sink = Arc::clone(&stderr_buf);
        std::thread::spawn(move || {
            for line in BufReader::new(pipe).lines().map_while(Result::ok) {
                let mut buf = sink.lock().unwrap();
                buf.push_str(&line);
                buf.push('\n');
            }
        });
    }

    // Wait until at least one checkpoint is committed, so the recovery has
    // a real cut to restore from — then SIGKILL the first slave.
    let deadline = Instant::now() + DEADLINE;
    loop {
        let committed = std::fs::read_dir(&ckpt)
            .map(|entries| {
                entries
                    .flatten()
                    .any(|e| e.file_name().to_str().is_some_and(|n| n.ends_with(".ckpt")))
            })
            .unwrap_or(false);
        if committed {
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint was ever committed");
        std::thread::sleep(Duration::from_millis(20));
    }
    let killed =
        Command::new("kill").args(["-9", &first_pid]).status().expect("invoke kill").success();
    assert!(killed, "SIGKILL of slave pid {first_pid} failed");

    // The master must recover on its own and finish successfully.
    let status = wait_with_deadline(&mut master, "recovering master");
    let stdout = stdout_buf.lock().unwrap().clone();
    let stderr = stderr_buf.lock().unwrap().clone();
    assert!(
        status.success(),
        "master failed instead of recovering\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );

    // The recovery logs name the failure: the dead rank (heartbeat
    // verdict) and the dead process (exit status), not just a timeout.
    assert!(
        stderr.contains("missed its heartbeat deadline"),
        "no heartbeat conviction in stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("died abnormally") && stderr.contains("SIGKILL"),
        "dead slave's exit status not surfaced:\n{stderr}"
    );
    assert!(
        stdout.contains("recovering: respawning slaves"),
        "no recovery relaunch logged:\n{stdout}"
    );
    assert!(
        stdout.contains("resuming from iteration"),
        "recovery did not restore from a committed checkpoint:\n{stdout}"
    );

    // The ensemble is valid and — the full claim — identical to a run that
    // was never interrupted.
    let model = persist::load_ensemble(&out).expect("recovered run saved a valid ensemble");
    assert_eq!(model.components(), 5);

    let reference = dir.join("reference.lpz");
    let mut ref_args =
        vec!["train", "--driver", "sequential", "--out", reference.to_str().unwrap()];
    ref_args.extend_from_slice(&flags);
    let ref_out = Command::new(BIN).args(&ref_args).output().expect("reference run");
    assert!(ref_out.status.success(), "reference run failed");
    assert_eq!(
        std::fs::read(&out).unwrap(),
        std::fs::read(&reference).unwrap(),
        "recovered run's .lpz differs from the uninterrupted reference"
    );
}

#[test]
fn launch_without_checkpoints_fails_fast_on_a_dead_slave() {
    // Without a checkpoint dir there is no elastic recovery: the master
    // still must not hang — the monitored gather is only armed when
    // recovery is, so this run relies on the transport's liveness cascade:
    // the SIGKILL collapses the slave mesh, every stranded rank exits
    // loudly, and the master's bootstrap-or-gather fails within bounds.
    let dir = workdir("no_ckpt");
    let out = dir.join("never.lpz");
    let flags = ["--tiny", "--grid", "2", "--iterations", "2000", "--batches", "2"];
    let mut args = vec!["launch", "--out", out.to_str().unwrap()];
    args.extend_from_slice(&flags);
    let mut master = Command::new(BIN)
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn master");
    // Grab one slave pid, then kill it.
    let pid = {
        let pipe = master.stdout.take().expect("stdout");
        let mut lines = BufReader::new(pipe).lines();
        let deadline = Instant::now() + DEADLINE;
        loop {
            assert!(Instant::now() < deadline, "no slave spawned");
            let line = lines.next().expect("stdout closed").expect("read");
            if let Some(rest) = line.strip_prefix("spawned slave pid=") {
                std::thread::spawn(move || for _ in lines.by_ref() {});
                break rest.trim().to_string();
            }
        }
    };
    std::thread::sleep(Duration::from_millis(100));
    assert!(Command::new("kill").args(["-9", &pid]).status().unwrap().success());
    let status = wait_with_deadline(&mut master, "unrecoverable master");
    assert!(!status.success(), "a dead slave without checkpoints cannot succeed");
    assert!(!out.exists(), "no ensemble must be saved on an aborted run");
}

/// The checkpoint directory must survive the recovery relaunch with a
/// manifest readable by `resume` — the operator's manual fallback.
#[test]
fn checkpoint_dir_stays_resumable_after_a_pause() {
    let dir = workdir("manual_fallback");
    let ckpt = dir.join("ckpt");
    let flags = ["--tiny", "--grid", "2", "--iterations", "6", "--batches", "2"];
    let mut args = vec![
        "launch",
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "1",
        "--pause-after",
        "3",
    ];
    args.extend_from_slice(&flags);
    let out = Command::new(BIN).args(&args).output().expect("paused launch");
    assert!(out.status.success(), "paused launch failed");
    let manifest = lipizzaner::runtime::checkpoint::read_manifest(Path::new(&ckpt))
        .expect("manifest readable after pause");
    assert_eq!(manifest.coevolution.iterations, 6);
    let cut = lipizzaner::runtime::checkpoint::latest_consistent_iteration(
        Path::new(&ckpt),
        manifest.cells(),
    )
    .expect("scan");
    assert_eq!(cut, Some(3), "pause did not commit the cut it promised");
}
