//! Deterministic fault injection, end to end.
//!
//! Two layers of proof:
//!
//! 1. **Property tests on the virtual cluster**: random scripted kills are
//!    replayed on the simulator, which models the distributed stack's
//!    degradation exactly (frozen death-frame substitution, solo catch-up,
//!    rejoin). Every faulted run must terminate (no deadlock), respect the
//!    staleness bound, and replay to byte-identical ensembles.
//!
//! 2. **A real multi-process run**: `launch` spawns one slave OS process
//!    per cell; the fault plan SIGKILLs one of them mid-run. The master
//!    must replace that rank in-flight (never the full-teardown recovery
//!    path), survivors' iteration counters must never move backwards, and
//!    the saved ensemble must be byte-identical across a rerun *and* to
//!    the virtual cluster's model of the same faulted run.

use lipizzaner::cluster::{SimulatedCluster, SimulationOptions};
use lipizzaner::core::TrainConfig;
use lipizzaner::mpi::{replacement_schedule, FaultPlan};
use lipizzaner::telemetry::{parse_journal, EventKind, RankJournal};
use lipizzaner::tensor::{Matrix, Rng64};
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_lipizzaner");
/// Per-invocation deadline: a wedged degraded run fails instead of hanging
/// the suite.
const DEADLINE: Duration = Duration::from_secs(60);

fn toy_data(cfg: &TrainConfig) -> Matrix {
    let mut rng = Rng64::seed_from(cfg.training.data_seed);
    rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
}

fn faulted_config(
    victim: usize,
    kill: usize,
    max_stale: usize,
    iterations: usize,
) -> TrainConfig {
    let mut cfg = TrainConfig::smoke(2);
    cfg.coevolution.iterations = iterations;
    cfg.with_fault_plan(format!("kill:{victim}@{kill}"), max_stale)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any scripted kill — replaceable or not — terminates, honors the
    /// staleness bound, and replays deterministically.
    #[test]
    fn scripted_kills_replay_deterministically(
        victim in 2usize..=4,
        kill in 1usize..5,
        max_stale in 1usize..=3,
        iterations in 6usize..=8,
    ) {
        let cfg = faulted_config(victim, kill, max_stale, iterations);

        // The schedule every party derives: when the kill is replaceable,
        // the absence window is exactly the staleness bound and the rejoin
        // lands strictly before the end of training.
        let plan = FaultPlan::parse(cfg.fault.plan.as_deref().unwrap()).unwrap();
        if let Some(sched) = replacement_schedule(
            &plan,
            cfg.fault.max_stale_iters,
            cfg.checkpoint.every,
            iterations,
            cfg.cells(),
        ) {
            prop_assert_eq!(sched.victim_world, victim);
            prop_assert_eq!(sched.cell, victim - 1);
            prop_assert!(sched.rejoin_round - sched.kill_iter <= max_stale);
            prop_assert!(sched.rejoin_round < iterations);
        }

        let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
        let a = sim.run(&cfg, |_| toy_data(&cfg));
        let b = sim.run(&cfg, |_| toy_data(&cfg));

        // Terminates with every cell at the target iteration count
        // (bounded staleness: nobody is left behind or stuck waiting).
        prop_assert_eq!(a.report.iterations, iterations);
        prop_assert_eq!(a.report.cells.len(), 4);

        // Replay determinism: outcomes byte-identical (wall-clock fields
        // excluded — everything the models and fitnesses depend on).
        prop_assert_eq!(&a.report.cells, &b.report.cells);
        prop_assert_eq!(a.report.best_cell, b.report.best_cell);
        prop_assert_eq!(&a.ensembles, &b.ensembles);
    }

    /// A degraded run differs from the healthy run only through the
    /// scripted fault — and only when the schedule actually arms.
    #[test]
    fn unreplaceable_plans_leave_the_run_untouched(
        kill in 6usize..10,
        max_stale in 1usize..=3,
    ) {
        // Kill scripted past the end of training: no replacement schedule,
        // so the faulted config must train the healthy trajectory.
        let iterations = 6;
        let cfg = faulted_config(3, kill, max_stale, iterations);
        let plan = FaultPlan::parse(cfg.fault.plan.as_deref().unwrap()).unwrap();
        prop_assert!(replacement_schedule(
            &plan,
            cfg.fault.max_stale_iters,
            cfg.checkpoint.every,
            iterations,
            cfg.cells(),
        )
        .is_none());

        let mut healthy = TrainConfig::smoke(2);
        healthy.coevolution.iterations = iterations;
        let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
        let degraded = sim.run(&cfg, |_| toy_data(&cfg));
        let reference = sim.run(&healthy, |_| toy_data(&healthy));
        prop_assert_eq!(&degraded.ensembles, &reference.ensembles);
    }
}

// ------------------------------------------------------- real processes

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lipiz_fault_injection").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test workdir");
    dir
}

/// Run the binary with `args`, enforcing the deadline.
fn run(args: &[&str]) -> Output {
    let mut child = Command::new(BIN)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lipizzaner binary");
    let start = Instant::now();
    loop {
        match child.try_wait().expect("poll child") {
            Some(_) => break,
            None if start.elapsed() > DEADLINE => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("`lipizzaner {}` exceeded the {DEADLINE:?} deadline", args.join(" "));
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    let out = child.wait_with_output().expect("collect output");
    assert!(
        out.status.success(),
        "`lipizzaner {}` failed: {}\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

fn read(path: &PathBuf) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Parse `survivor rank N iterations: a b c ...` lines and assert that no
/// surviving rank's counter sequence ever decreases (a full-teardown
/// relaunch would reset survivors to zero; in-flight replacement must
/// not). The scripted victim is exempt: its replacement process
/// legitimately restarts from the checkpoint cut.
fn assert_monotonic_survivor_counters(stdout: &str, victim: usize) {
    let mut lines_seen = 0;
    for line in stdout.lines() {
        let Some(rest) = line.strip_prefix("survivor rank ") else { continue };
        lines_seen += 1;
        let (rank, counters) = rest.split_once(" iterations:").expect("counter line shape");
        let rank: usize = rank.trim().parse().expect("rank number");
        let values: Vec<u64> =
            counters.split_whitespace().map(|v| v.parse().expect("counter value")).collect();
        assert!(!values.is_empty(), "rank {rank}: empty counter sequence");
        if rank == victim {
            continue;
        }
        assert!(
            values.windows(2).all(|w| w[0] <= w[1]),
            "rank {rank}: iteration counter moved backwards: {values:?}"
        );
    }
    assert!(lines_seen >= 4, "expected a counter line per rank, saw {lines_seen}:\n{stdout}");
}

#[test]
fn sigkilled_slave_is_replaced_in_flight_and_replay_is_byte_identical() {
    // The acceptance bar: a 2×2 grid of real slave OS processes; the fault
    // plan SIGKILLs world rank 3 at iteration 2. The master must replace
    // exactly that rank mid-run — survivors never leave iteration cadence —
    // and the whole degraded run must be a pure function of (seed, plan):
    // a rerun and the virtual-cluster model both land on the same bytes.
    let dir = workdir("inflight");
    let tel_dir = dir.join("tel");
    let fault_flags = [
        "--tiny",
        "--grid",
        "2",
        "--iterations",
        "6",
        "--batches",
        "2",
        "--checkpoint-every",
        "2",
        "--fault-plan",
        "kill:3@2",
        "--max-stale-iters",
        "2",
        "--heartbeat-interval-ms",
        "10",
        "--heartbeat-misses",
        "5",
    ];

    let mut outputs = Vec::new();
    for name in ["a", "b"] {
        let lpz = dir.join(format!("{name}.lpz"));
        let ckpt = dir.join(format!("ckpt_{name}"));
        let mut args = vec![
            "launch",
            "--out",
            lpz.to_str().unwrap(),
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
        ];
        args.extend_from_slice(&fault_flags);
        // Run "a" journals everything; run "b" stays plain. The byte-identity
        // assertion below therefore doubles as proof that `--telemetry` is
        // purely observational on a real degraded multi-process run.
        if name == "a" {
            args.extend_from_slice(&[
                "--telemetry",
                "--telemetry-dir",
                tel_dir.to_str().unwrap(),
            ]);
        }
        let out = run(&args);
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();

        // The victim was replaced in-flight — and only the victim.
        assert!(
            stdout.contains("replacing slave world rank 3 in-flight"),
            "no in-flight replacement:\n{stdout}"
        );
        assert_eq!(
            stdout.matches("replacing slave world rank").count(),
            1,
            "more than one replacement:\n{stdout}"
        );
        // The full-teardown recovery path must never fire.
        assert!(
            !stdout.contains("recovering: respawning"),
            "fell back to full-teardown recovery:\n{stdout}"
        );
        // 4 original slaves + exactly 1 replacement process.
        assert_eq!(
            stdout.matches("spawned slave pid=").count(),
            5,
            "unexpected process count:\n{stdout}"
        );
        assert_monotonic_survivor_counters(&stdout, 3);
        outputs.push(read(&lpz));
    }
    assert_eq!(outputs[0], outputs[1], "degraded rerun is not byte-identical");

    // The fault left a paper trail in the per-rank journals. Journals are
    // keyed by node name, so the victim's evidence survives its replacement
    // (which announces itself as `node03r`).
    let journal = |file: &str| -> RankJournal {
        let path = tel_dir.join(file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read journal {}: {e}", path.display()));
        parse_journal(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
    };

    // The victim records its own scripted death: cell 2, iteration 2.
    let victim = journal("node03.jsonl");
    assert!(
        victim.events.iter().any(|e| e.kind == EventKind::Kill && e.cell == 2 && e.iter == 2),
        "victim journal missing the kill event at cell 2, iteration 2: {:?}",
        victim.events
    );

    // The replacement process journals its rejoin under its own node name.
    let replacement = journal("node03r.jsonl");
    assert!(
        replacement.events.iter().any(|e| e.kind == EventKind::Rejoin),
        "replacement journal missing the rejoin event: {:?}",
        replacement.events
    );

    // The master names world rank 3 as the dead slave. Which conviction-path
    // event lands is timing-dependent (the doomed-gather signal usually
    // beats the heartbeat deadline, so a full conviction may never fire),
    // but at 10ms heartbeat intervals at least one miss always does.
    let master = journal("master.jsonl");
    assert!(
        master.events.iter().any(|e| e.cell == 3
            && matches!(
                e.kind,
                EventKind::HeartbeatMiss | EventKind::Conviction | EventKind::ConvictionCleared
            )),
        "master journal never names rank 3 on the conviction path: {:?}",
        master.events
    );

    // The journals merge into a Perfetto-loadable trace with the fault
    // events on the right rank tracks.
    let trace_path = dir.join("trace.json");
    run(&[
        "trace",
        "--journals",
        tel_dir.to_str().unwrap(),
        "--out",
        trace_path.to_str().unwrap(),
    ]);
    let trace = String::from_utf8(read(&trace_path)).expect("trace is UTF-8");
    assert!(trace.contains("\"traceEvents\""), "not a Chrome trace: {trace}");
    // One event per line; the kill and the rejoin must sit on rank 3's track
    // (the replacement keeps the victim's world rank).
    let on_rank3_track = |name: &str| {
        trace
            .lines()
            .any(|l| l.contains("\"tid\":3") && l.contains(&format!("\"name\":\"{name}\"")))
    };
    assert!(on_rank3_track("kill"), "kill instant missing from rank 3's track:\n{trace}");
    assert!(on_rank3_track("rejoin"), "rejoin instant missing from rank 3's track:\n{trace}");

    // The virtual cluster models the same kill, byte-for-byte.
    let sim_lpz = dir.join("sim.lpz");
    let sim_ckpt = dir.join("ckpt_sim");
    let mut sim_args = vec![
        "train",
        "--driver",
        "cluster-sim",
        "--out",
        sim_lpz.to_str().unwrap(),
        "--checkpoint-dir",
        sim_ckpt.to_str().unwrap(),
    ];
    sim_args.extend_from_slice(&fault_flags);
    run(&sim_args);
    assert_eq!(
        outputs[0],
        read(&sim_lpz),
        "virtual-cluster model disagrees with the real degraded run"
    );
}

#[test]
fn healthy_run_with_degradation_armed_stays_byte_identical() {
    // Arming graceful degradation without any scripted kill must not
    // perturb training: the run stays byte-identical to a plain one.
    let dir = workdir("armed_healthy");
    let plain = dir.join("plain.lpz");
    let armed = dir.join("armed.lpz");
    let flags = ["--tiny", "--grid", "2", "--iterations", "3", "--batches", "2"];

    let mut plain_args = vec!["launch", "--out", plain.to_str().unwrap()];
    plain_args.extend_from_slice(&flags);
    run(&plain_args);

    let mut armed_args = vec![
        "launch",
        "--out",
        armed.to_str().unwrap(),
        "--max-stale-iters",
        "2",
        "--heartbeat-interval-ms",
        "10",
    ];
    armed_args.extend_from_slice(&flags);
    run(&armed_args);

    assert_eq!(read(&plain), read(&armed), "armed degradation changed a healthy run");
}
