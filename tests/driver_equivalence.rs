//! The workspace's strongest correctness claim: the sequential baseline,
//! the threaded master/slave runtime, and the virtual-time cluster
//! simulator all execute the *same* deterministic training and must agree
//! bit-for-bit on the results — only their notion of time differs.

use lipizzaner::prelude::*;

fn toy_data(cfg: &TrainConfig) -> Matrix {
    let mut rng = Rng64::seed_from(cfg.training.data_seed);
    rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
}

fn assert_reports_equal(a: &TrainReport, b: &TrainReport, label: &str) {
    assert_eq!(a.cells.len(), b.cells.len(), "{label}: cell counts");
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.cell, y.cell, "{label}: cell ids");
        assert_eq!(x.gen_fitness, y.gen_fitness, "{label}: cell {} G fitness", x.cell);
        assert_eq!(x.disc_fitness, y.disc_fitness, "{label}: cell {} D fitness", x.cell);
        assert_eq!(x.mixture_weights, y.mixture_weights, "{label}: cell {} mixture", x.cell);
    }
    assert_eq!(a.best_cell, b.best_cell, "{label}: best cell");
}

fn run_all_three(cfg: &TrainConfig) -> (TrainReport, TrainReport, TrainReport) {
    let data = toy_data(cfg);
    let mut seq = SequentialTrainer::new(cfg, |_| data.clone());
    let seq_report = seq.run();

    let dist_outcome =
        run_distributed(cfg, |_, cfg| toy_data(cfg), DistributedOptions::default());

    let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
    let sim_outcome = sim.run(cfg, |_| data.clone());

    (seq_report, dist_outcome.report, sim_outcome.report)
}

#[test]
fn three_drivers_agree_on_2x2() {
    let cfg = TrainConfig::smoke(2);
    let (seq, dist, sim) = run_all_three(&cfg);
    assert_reports_equal(&seq, &dist, "sequential vs distributed");
    assert_reports_equal(&seq, &sim, "sequential vs cluster-sim");
}

#[test]
fn three_drivers_agree_on_3x3() {
    let cfg = TrainConfig::smoke(3);
    let (seq, dist, sim) = run_all_three(&cfg);
    assert_reports_equal(&seq, &dist, "sequential vs distributed 3x3");
    assert_reports_equal(&seq, &sim, "sequential vs cluster-sim 3x3");
}

#[test]
fn drivers_agree_under_mustangs_loss_mutation() {
    let cfg = TrainConfig::smoke(2).with_mustangs();
    let (seq, dist, sim) = run_all_three(&cfg);
    assert_reports_equal(&seq, &dist, "mustangs: sequential vs distributed");
    assert_reports_equal(&seq, &sim, "mustangs: sequential vs cluster-sim");
}

#[test]
fn drivers_agree_under_moore9_neighborhood() {
    let mut cfg = TrainConfig::smoke(2);
    cfg.grid.pattern = NeighborhoodPattern::Moore9;
    let (seq, dist, sim) = run_all_three(&cfg);
    assert_reports_equal(&seq, &dist, "moore9: sequential vs distributed");
    assert_reports_equal(&seq, &sim, "moore9: sequential vs cluster-sim");
}

#[test]
fn drivers_agree_with_all_pairs_adversaries() {
    let mut cfg = TrainConfig::smoke(2);
    cfg.coevolution.adversary = lipizzaner::core::AdversaryStrategy::All;
    cfg.coevolution.iterations = 1;
    let (seq, dist, sim) = run_all_three(&cfg);
    assert_reports_equal(&seq, &dist, "all-pairs: sequential vs distributed");
    assert_reports_equal(&seq, &sim, "all-pairs: sequential vs cluster-sim");
}

#[test]
fn drivers_agree_on_non_square_grids() {
    // The virtual cluster and most suites only ever run square grids; the
    // degenerate shapes (single row, 2×5 with its N==S wrap collapse) must
    // agree across drivers too.
    for (rows, cols) in [(1, 3), (2, 5)] {
        let mut cfg = TrainConfig::smoke(2);
        cfg.grid.rows = rows;
        cfg.grid.cols = cols;
        cfg.coevolution.iterations = 1;
        let (seq, dist, sim) = run_all_three(&cfg);
        assert_eq!(seq.cells.len(), rows * cols);
        assert_reports_equal(&seq, &dist, &format!("{rows}x{cols}: sequential vs distributed"));
        assert_reports_equal(&seq, &sim, &format!("{rows}x{cols}: sequential vs cluster-sim"));
    }
}

#[test]
fn different_seeds_change_results() {
    // Sanity check that the equality above is non-vacuous.
    let cfg_a = TrainConfig::smoke(2);
    let mut cfg_b = TrainConfig::smoke(2);
    cfg_b.seed += 1;
    let data = toy_data(&cfg_a);
    let mut seq_a = SequentialTrainer::new(&cfg_a, |_| data.clone());
    let mut seq_b = SequentialTrainer::new(&cfg_b, |_| data.clone());
    let a = seq_a.run();
    let b = seq_b.run();
    let same = a.cells.iter().zip(&b.cells).all(|(x, y)| x.gen_fitness == y.gen_fitness);
    assert!(!same, "different master seeds produced identical runs");
}
