//! Telemetry end-to-end, through the CLI binary:
//!
//! 1. **Observational-only**: `--telemetry` must not perturb training — the
//!    saved `.lpz` is byte-identical with and without it, on the sequential
//!    and in-process distributed drivers alike (the fault-injection suite
//!    covers the degraded TCP run).
//! 2. **Journals**: every rank writes a parseable JSONL journal into the
//!    `--telemetry-dir`, and a run summary sidecar lands next to the `.lpz`.
//! 3. **Trace export**: `lipizzaner trace` merges the journals into a
//!    Chrome trace-event document (one track per rank, balanced span
//!    begin/end pairs) that Perfetto loads directly.

use lipizzaner::telemetry::{parse_journal, EventKind, RankJournal};
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_lipizzaner");
const DEADLINE: Duration = Duration::from_secs(60);
const FLAGS: [&str; 7] = ["--tiny", "--grid", "2", "--iterations", "3", "--batches", "2"];

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lipiz_telemetry").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test workdir");
    dir
}

/// Run the binary with `args`, enforcing the deadline and success.
fn run(args: &[&str]) -> Output {
    let out = spawn_to_completion(args);
    assert!(
        out.status.success(),
        "`lipizzaner {}` failed: {}\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

fn spawn_to_completion(args: &[&str]) -> Output {
    let mut child = Command::new(BIN)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lipizzaner binary");
    let start = Instant::now();
    loop {
        match child.try_wait().expect("poll child") {
            Some(_) => break,
            None if start.elapsed() > DEADLINE => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("`lipizzaner {}` exceeded the {DEADLINE:?} deadline", args.join(" "));
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    child.wait_with_output().expect("collect output")
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn read_journal(path: &Path) -> RankJournal {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read journal {}: {e}", path.display()));
    parse_journal(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

/// Train twice with `driver` — plain, then with `--telemetry` — and return
/// (plain bytes, traced bytes, telemetry dir, traced `.lpz` path).
fn paired_runs(dir: &Path, driver: &str) -> (Vec<u8>, Vec<u8>, PathBuf, PathBuf) {
    let plain = dir.join("plain.lpz");
    let traced = dir.join("traced.lpz");
    let tel_dir = dir.join("tel");

    let mut plain_args = vec!["train", "--driver", driver, "--out", plain.to_str().unwrap()];
    plain_args.extend_from_slice(&FLAGS);
    run(&plain_args);

    let mut traced_args = vec![
        "train",
        "--driver",
        driver,
        "--out",
        traced.to_str().unwrap(),
        "--telemetry",
        "--telemetry-dir",
        tel_dir.to_str().unwrap(),
    ];
    traced_args.extend_from_slice(&FLAGS);
    run(&traced_args);

    (read(&plain), read(&traced), tel_dir, traced)
}

#[test]
fn sequential_telemetry_is_observational_and_journals_the_run() {
    let dir = workdir("sequential");
    let (plain, traced, tel_dir, lpz) = paired_runs(&dir, "sequential");
    assert_eq!(plain, traced, "--telemetry changed a sequential run's output bytes");

    // The whole grid runs on rank 0; its journal holds the span record.
    let journal = read_journal(&tel_dir.join("node00.jsonl"));
    assert!(!journal.events.is_empty(), "sequential journal is empty");
    let trains = journal.events.iter().filter(|e| e.kind == EventKind::TrainBegin).count();
    assert!(trains > 0, "no train spans journaled: {:?}", journal.events);

    // The run summary sidecar sits next to the `.lpz` and carries both the
    // Table IV profile and the merged telemetry aggregate.
    let sidecar = PathBuf::from(format!("{}.summary.json", lpz.display()));
    let summary = String::from_utf8(read(&sidecar)).expect("summary is UTF-8");
    for key in ["\"driver\"", "\"grid\"", "\"profile\"", "\"routine\"", "\"telemetry\""] {
        assert!(summary.contains(key), "summary missing {key}: {summary}");
    }
}

#[test]
fn distributed_telemetry_is_observational_and_every_rank_journals() {
    let dir = workdir("distributed");
    let (plain, traced, tel_dir, lpz) = paired_runs(&dir, "distributed");
    assert_eq!(plain, traced, "--telemetry changed a distributed run's output bytes");

    // One journal per slave rank plus the master's conviction-path journal.
    for file in ["node01.jsonl", "node02.jsonl", "node03.jsonl", "node04.jsonl"] {
        let journal = read_journal(&tel_dir.join(file));
        assert!(!journal.events.is_empty(), "{file} is empty");
        assert!(
            journal.events.iter().any(|e| e.kind == EventKind::ExchangeComplete),
            "{file} journaled no exchange completions"
        );
    }
    assert!(tel_dir.join("master.jsonl").exists(), "master journal missing");

    // Slaves shipped their summaries to the master, which merged them into
    // the sidecar: 4 cells × 3 iterations of training distributions.
    let sidecar = PathBuf::from(format!("{}.summary.json", lpz.display()));
    let summary = String::from_utf8(read(&sidecar)).expect("summary is UTF-8");
    assert!(summary.contains("\"telemetry\""), "sidecar lacks telemetry block: {summary}");
}

#[test]
fn trace_subcommand_exports_a_perfetto_document() {
    let dir = workdir("trace");
    let (_, _, tel_dir, _) = paired_runs(&dir, "distributed");

    let out = dir.join("trace.json");
    let cmd = run(&[
        "trace",
        "--journals",
        tel_dir.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&cmd.stdout);
    assert!(stdout.contains("rank track(s)"), "unexpected trace output: {stdout}");

    let trace = String::from_utf8(read(&out)).expect("trace is UTF-8");
    // Document shape is the Chrome trace-event contract.
    assert!(trace.starts_with("{\"traceEvents\":[\n"), "bad preamble: {trace}");
    assert!(trace.ends_with("],\"displayTimeUnit\":\"ms\"}\n"), "bad epilogue");
    // One named track per journaled rank: master (0) + four slaves.
    for rank in ["rank 00", "rank 01", "rank 02", "rank 03", "rank 04"] {
        assert!(trace.contains(&format!("\"name\":\"{rank}\"")), "missing track {rank}");
    }
    // Spans arrive balanced, and the Table IV routines are all present.
    assert_eq!(
        trace.matches("\"ph\":\"B\"").count(),
        trace.matches("\"ph\":\"E\"").count(),
        "unbalanced span begin/end pairs"
    );
    for routine in ["gather", "mutate", "train", "update genomes"] {
        assert!(
            trace.contains(&format!("\"name\":\"{routine}\"")),
            "routine {routine} missing from the trace"
        );
    }
}

#[test]
fn trace_subcommand_fails_cleanly_without_journals() {
    let dir = workdir("no_journals");
    let missing = dir.join("nowhere");
    let out = spawn_to_completion(&[
        "trace",
        "--journals",
        missing.to_str().unwrap(),
        "--out",
        dir.join("trace.json").to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "trace succeeded against a missing journal dir");
}
