//! End-to-end pipeline on the digit workload: data synthesis → cellular
//! training → classifier-based scoring, asserting that training actually
//! improves the generative model.

use lipizzaner::prelude::*;

/// A reduced-but-real digit config: true 784-dim images, small hidden
/// layers so the test stays fast.
fn digit_config() -> TrainConfig {
    let mut cfg = TrainConfig::smoke(2);
    cfg.network.latent_dim = 16;
    cfg.network.hidden_layers = 1;
    cfg.network.hidden_units = 48;
    cfg.network.data_dim = lipizzaner::data::IMAGE_DIM;
    cfg.coevolution.iterations = 12;
    cfg.coevolution.mixture_every = 5;
    cfg.training.batch_size = 32;
    cfg.training.batches_per_iteration = 20;
    cfg.training.skip_disc_steps = 0;
    cfg.training.dataset_size = 320;
    cfg.training.eval_batch = 64;
    cfg.mutation.initial_lr = 1e-3;
    cfg
}

/// Mean squared pixel value — tracks how far outputs have moved from the
/// near-zero init toward the saturated ink/background statistics of the
/// digit images. This improves monotonically within a test-sized budget,
/// unlike FID, which needs orders of magnitude more adversarial steps
/// (the paper trains 200 iterations × 600 batches) to move reliably.
fn second_moment(m: &Matrix) -> f32 {
    m.as_slice().iter().map(|v| v * v).sum::<f32>() / m.len() as f32
}

#[test]
fn cellular_training_moves_generator_toward_data_statistics() {
    let cfg = digit_config();
    let digits = SynthDigits::generate(cfg.training.dataset_size, cfg.training.data_seed);
    let scorer = ScoreService::bootstrap(&digits, 3, 17);
    let real_m2 = second_moment(&digits.images);

    // Untrained baseline: a fresh generator's samples.
    let mut rng = Rng64::seed_from(5);
    let net_cfg = cfg.network.to_network_config();
    let untrained = Generator::new(&net_cfg, &mut rng);
    let untrained_samples = untrained.sample(200, &mut rng);
    let untrained_fid = scorer.fid_of(&untrained_samples);
    let untrained_m2 = second_moment(&untrained_samples);

    // Cellular training.
    let images = digits.images.clone();
    let mut trainer = SequentialTrainer::new(&cfg, |_| images.clone());
    let report = trainer.run();
    let ensembles = trainer.ensembles();
    let trained_samples = ensembles[report.best_cell].sample(200, &mut rng);
    let trained_fid = scorer.fid_of(&trained_samples);
    let trained_m2 = second_moment(&trained_samples);

    // The second moment must move decisively from ~0 toward the real value.
    assert!(
        trained_m2 > untrained_m2 * 1.5,
        "generator statistics did not move: {untrained_m2:.3} -> {trained_m2:.3} (real {real_m2:.3})"
    );
    assert!(
        (real_m2 - trained_m2).abs() < (real_m2 - untrained_m2).abs(),
        "second moment moved away from the data: {untrained_m2:.3} -> {trained_m2:.3} vs real {real_m2:.3}"
    );
    // FID must not regress meaningfully at this budget (it improves only
    // over far longer runs).
    assert!(
        trained_fid < untrained_fid * 1.3,
        "FID regressed badly: {untrained_fid:.1} -> {trained_fid:.1}"
    );
}

#[test]
fn ensemble_samples_look_like_images() {
    let cfg = digit_config();
    let digits = SynthDigits::generate(cfg.training.dataset_size, cfg.training.data_seed);
    let images = digits.images.clone();
    let mut trainer = SequentialTrainer::new(&cfg, |_| images.clone());
    let report = trainer.run();
    let mut rng = Rng64::seed_from(6);
    let ensembles = trainer.ensembles();
    let samples = ensembles[report.best_cell].sample(32, &mut rng);
    assert_eq!(samples.shape(), (32, lipizzaner::data::IMAGE_DIM));
    assert!(samples.all_finite());
    assert!(samples.as_slice().iter().all(|v| v.abs() <= 1.0), "outside tanh range");
    // Not constant: the ensemble must produce varied outputs.
    let first = samples.row(0);
    let varied = (1..samples.rows())
        .any(|r| samples.row(r).iter().zip(first).any(|(a, b)| (a - b).abs() > 1e-3));
    assert!(varied, "ensemble collapsed to a constant output");
}

#[test]
fn scorer_ranks_real_above_noise() {
    let digits = SynthDigits::generate(300, 77);
    let scorer = ScoreService::bootstrap(&digits, 3, 78);
    let holdout = SynthDigits::generate(150, 79);
    let mut rng = Rng64::seed_from(80);
    let noise = rng.uniform_matrix(150, lipizzaner::data::IMAGE_DIM, -1.0, 1.0);
    let real = scorer.score(&holdout.images);
    let junk = scorer.score(&noise);
    assert!(real.fid < junk.fid, "FID failed to separate real from noise");
    assert!(
        real.coverage.covered > junk.coverage.covered || real.inception > junk.inception,
        "no metric separated real from noise"
    );
}
