//! The checkpoint subsystem's proof obligation, in the repo's signature
//! style: a run checkpointed at iteration `k` and resumed must produce a
//! **byte-identical `.lpz`** to the uninterrupted run — for every driver.
//!
//! Each test invokes the compiled `lipizzaner` binary: a run is interrupted
//! with `--pause-after k` (stopping at a clean boundary with a committed
//! checkpoint, exactly the state a crash recovery restores), then restarted
//! with `lipizzaner resume --from DIR`, and the saved ensemble is compared
//! byte-for-byte against an uninterrupted sequential reference. Since the
//! `distributed_process` suite already proves all four drivers agree with
//! the sequential baseline, matching that one reference closes the square:
//! interrupt + resume is invisible on every driver.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_lipizzaner");
/// Per-invocation deadline; a wedged process fails the test, never hangs it.
const DEADLINE: Duration = Duration::from_secs(60);

/// The shared run shape: 2×2 grid, 4 iterations, interrupted after 2.
const FLAGS: [&str; 7] = ["--tiny", "--grid", "2", "--iterations", "4", "--batches", "2"];
const PAUSE_AT: &str = "2";

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lipiz_resume_equivalence").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test workdir");
    dir
}

fn run(args: &[&str]) -> Output {
    let mut child = Command::new(BIN)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lipizzaner binary");
    let start = Instant::now();
    loop {
        match child.try_wait().expect("poll child") {
            Some(_) => break,
            None if start.elapsed() > DEADLINE => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("`lipizzaner {}` exceeded the {DEADLINE:?} deadline", args.join(" "));
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    let out = child.wait_with_output().expect("collect output");
    assert!(
        out.status.success(),
        "`lipizzaner {}` failed:\n{}\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Uninterrupted sequential reference ensemble for the shared run shape.
fn reference(dir: &Path) -> Vec<u8> {
    let out = dir.join("reference.lpz");
    let mut args = vec!["train", "--driver", "sequential", "--out", out.to_str().unwrap()];
    args.extend_from_slice(&FLAGS);
    run(&args);
    read(&out)
}

/// Interrupt a run of `driver` at iteration `PAUSE_AT` (committing a
/// checkpoint), resume it with `lipizzaner resume`, and return the resumed
/// run's ensemble bytes.
fn interrupt_and_resume(dir: &Path, subcommand: &str, extra: &[&str]) -> Vec<u8> {
    let ckpt = dir.join("ckpt");
    let paused = dir.join("paused.lpz");
    let resumed = dir.join("resumed.lpz");

    let mut pause_args = vec![subcommand];
    pause_args.extend_from_slice(extra);
    let ckpt_str = ckpt.to_str().unwrap().to_string();
    pause_args.extend_from_slice(&[
        "--checkpoint-dir",
        &ckpt_str,
        "--checkpoint-every",
        "1",
        "--pause-after",
        PAUSE_AT,
        "--out",
        paused.to_str().unwrap(),
    ]);
    pause_args.extend_from_slice(&FLAGS);
    run(&pause_args);

    // The interruption must be real: a paused 2-iteration ensemble differs
    // from the full 4-iteration one.
    assert!(paused.exists(), "paused run saved no ensemble");

    let mut resume_args =
        vec!["resume", "--from", &ckpt_str, "--out", resumed.to_str().unwrap()];
    resume_args.extend_from_slice(extra);
    let out = run(&resume_args);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&format!("resuming from {ckpt_str} at iteration {PAUSE_AT}")),
        "resume did not restart from the pause cut: {stdout}"
    );
    read(&resumed)
}

#[test]
fn sequential_resume_is_byte_identical() {
    let dir = workdir("sequential");
    let reference = reference(&dir);
    let resumed = interrupt_and_resume(&dir, "train", &["--driver", "sequential"]);
    assert_eq!(resumed, reference, "sequential: resumed .lpz differs from uninterrupted");
    // Non-vacuity: the paused half-run really is a different model.
    assert_ne!(read(&dir.join("paused.lpz")), reference, "pause point did not interrupt");
}

#[test]
fn threaded_distributed_resume_is_byte_identical() {
    let dir = workdir("threaded");
    let reference = reference(&dir);
    let resumed = interrupt_and_resume(&dir, "train", &["--driver", "distributed"]);
    assert_eq!(resumed, reference, "threaded: resumed .lpz differs from uninterrupted");
}

#[test]
fn simulated_cluster_resume_is_byte_identical() {
    let dir = workdir("cluster_sim");
    let reference = reference(&dir);
    let resumed = interrupt_and_resume(&dir, "train", &["--driver", "cluster-sim"]);
    assert_eq!(resumed, reference, "cluster-sim: resumed .lpz differs from uninterrupted");
}

#[test]
fn tcp_multi_process_resume_is_byte_identical() {
    // The full story over real OS processes: `launch` spawns one slave
    // process per cell, every slave commits its own checkpoints through the
    // async writer, the run pauses, and a *fresh set of processes* resumes
    // it — each restoring its cell from disk after re-ranking through the
    // TCP handshake.
    let dir = workdir("tcp");
    let reference = reference(&dir);
    let resumed = interrupt_and_resume(
        &dir,
        "launch",
        &["--driver", "distributed", "--transport", "tcp"],
    );
    assert_eq!(resumed, reference, "tcp: resumed .lpz differs from uninterrupted");
}

/// Uninterrupted `--exchange async` sequential reference for the shared
/// run shape (async is deterministic too, just one generation behind).
fn reference_async(dir: &Path) -> Vec<u8> {
    let out = dir.join("reference_async.lpz");
    let mut args = vec![
        "train",
        "--driver",
        "sequential",
        "--exchange",
        "async",
        "--out",
        out.to_str().unwrap(),
    ];
    args.extend_from_slice(&FLAGS);
    run(&args);
    read(&out)
}

#[test]
fn async_threaded_resume_is_byte_identical() {
    // Under `--exchange async` a checkpoint cut carries the in-flight
    // exchange frame; resume must re-prime the pipeline from it and land
    // on the uninterrupted async trajectory exactly.
    let dir = workdir("async_threaded");
    let reference = reference_async(&dir);
    let resumed = interrupt_and_resume(
        &dir,
        "train",
        &["--driver", "distributed", "--exchange", "async"],
    );
    assert_eq!(resumed, reference, "async threaded: resumed .lpz differs from uninterrupted");
    // Non-vacuity: the staleness-1 trajectory really is a different model
    // from the synchronous one.
    assert_ne!(
        reference,
        super_reference_sync(&dir),
        "async and sync runs coincide — the overlap was never exercised"
    );
}

/// Sync sequential reference under a distinct output name (so the async
/// tests can compare against it in the same workdir).
fn super_reference_sync(dir: &Path) -> Vec<u8> {
    let out = dir.join("reference_sync.lpz");
    let mut args = vec!["train", "--driver", "sequential", "--out", out.to_str().unwrap()];
    args.extend_from_slice(&FLAGS);
    run(&args);
    read(&out)
}

#[test]
fn async_simulated_cluster_resume_is_byte_identical() {
    let dir = workdir("async_cluster_sim");
    let reference = reference_async(&dir);
    let resumed = interrupt_and_resume(
        &dir,
        "train",
        &["--driver", "cluster-sim", "--exchange", "async"],
    );
    assert_eq!(
        resumed, reference,
        "async cluster-sim: resumed .lpz differs from uninterrupted"
    );
}

#[test]
fn async_tcp_multi_process_resume_is_byte_identical() {
    // Async over real OS processes: the exchange thread overlaps the TCP
    // allgather with training in every slave, each slave checkpoints the
    // live frame, and a fresh set of processes resumes mid-pipeline.
    let dir = workdir("async_tcp");
    let reference = reference_async(&dir);
    let resumed = interrupt_and_resume(
        &dir,
        "launch",
        &["--driver", "distributed", "--transport", "tcp", "--exchange", "async"],
    );
    assert_eq!(resumed, reference, "async tcp: resumed .lpz differs from uninterrupted");
}

#[test]
fn resume_refuses_an_empty_directory() {
    let dir = workdir("empty");
    std::fs::create_dir_all(dir.join("nothing")).unwrap();
    let out = Command::new(BIN)
        .args(["resume", "--from", dir.join("nothing").to_str().unwrap()])
        .output()
        .expect("run binary");
    assert!(!out.status.success(), "resume from an empty dir must fail");
}
