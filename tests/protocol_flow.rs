//! Fig. 3 protocol-flow assertions against a live threaded run: the
//! master observes announcements, heartbeat progress, and a complete
//! final gather.

use lipizzaner::prelude::*;
use std::time::Duration;

fn toy_data(cfg: &TrainConfig) -> Matrix {
    let mut rng = Rng64::seed_from(cfg.training.data_seed);
    rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
}

#[test]
fn master_receives_one_announcement_per_slave() {
    let cfg = TrainConfig::smoke(2);
    let outcome = run_distributed(&cfg, |_, cfg| toy_data(cfg), DistributedOptions::default());
    assert_eq!(outcome.announcements.len(), cfg.cells());
    let mut ranks: Vec<usize> = outcome.announcements.iter().map(|a| a.rank).collect();
    ranks.sort_unstable();
    assert_eq!(ranks, (1..=cfg.cells()).collect::<Vec<_>>());
}

#[test]
fn all_cells_report_results_in_order() {
    let cfg = TrainConfig::smoke(3);
    let outcome = run_distributed(&cfg, |_, cfg| toy_data(cfg), DistributedOptions::default());
    assert_eq!(outcome.report.cells.len(), 9);
    for (i, c) in outcome.report.cells.iter().enumerate() {
        assert_eq!(c.cell, i, "results must arrive reduced in cell order");
        assert!(c.gen_fitness.is_finite());
        assert!(!c.mixture_weights.is_empty());
        let sum: f32 = c.mixture_weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "cell {i} mixture not normalized");
    }
}

#[test]
fn heartbeat_thread_observes_training_progress() {
    let mut cfg = TrainConfig::smoke(2);
    cfg.coevolution.iterations = 8;
    cfg.training.batches_per_iteration = 4;
    let outcome = run_distributed(
        &cfg,
        |_, cfg| toy_data(cfg),
        DistributedOptions {
            heartbeat_interval: Duration::from_millis(2),
            ..DistributedOptions::default()
        },
    );
    let log = &outcome.heartbeat;
    assert!(!log.is_empty(), "heartbeat thread never ran a round");
    // At least one round saw a live slave; reported iterations never exceed
    // the configured count.
    assert!(log.max_reported_iteration() <= cfg.coevolution.iterations as u64);
    let saw_any_state = log.rounds.iter().flatten().any(|r| r.state.is_some());
    assert!(saw_any_state, "no slave ever answered a heartbeat");
}

#[test]
fn per_slave_profiles_cover_all_routines() {
    let cfg = TrainConfig::smoke(2);
    let outcome = run_distributed(&cfg, |_, cfg| toy_data(cfg), DistributedOptions::default());
    for sr in &outcome.slave_results {
        let report = sr.profile_report();
        assert!(report.seconds(Routine::Train) > 0.0, "cell {} train time", sr.cell);
        assert!(report.seconds(Routine::Gather) >= 0.0, "cell {} gather time", sr.cell);
        assert!(sr.wall_seconds > 0.0);
    }
}

#[test]
fn distributed_wall_time_is_bounded_by_slowest_slave_plus_overhead() {
    let cfg = TrainConfig::smoke(2);
    let outcome = run_distributed(&cfg, |_, cfg| toy_data(cfg), DistributedOptions::default());
    let slowest = outcome.slave_results.iter().map(|r| r.wall_seconds).fold(0.0f64, f64::max);
    assert!(
        outcome.report.wall_seconds >= slowest * 0.5,
        "master wall {} vs slowest slave {}",
        outcome.report.wall_seconds,
        slowest
    );
}
