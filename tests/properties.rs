//! Property-based tests (proptest) over the workspace's core data
//! structures and invariants.

use lipizzaner::core::{Grid, MixtureWeights, NeighborhoodPattern};
use lipizzaner::mpi::wire::Wire;
use lipizzaner::nn::{Activation, Mlp};
use lipizzaner::tensor::{ops, reduce, Matrix, Rng64};
use proptest::prelude::*;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- tensor algebra ---------------------------------------------------

    #[test]
    fn transpose_is_involutive(m in matrix_strategy(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_addition(
        seed in 0u64..1000,
        (m, k, n) in (1usize..6, 1usize..6, 1usize..6)
    ) {
        let mut rng = Rng64::seed_from(seed);
        let a = rng.uniform_matrix(m, k, -2.0, 2.0);
        let b = rng.uniform_matrix(k, n, -2.0, 2.0);
        let c = rng.uniform_matrix(k, n, -2.0, 2.0);
        // A(B + C) == AB + AC up to f32 rounding.
        let bc = ops::try_add(&b, &c).unwrap();
        let lhs = ops::matmul(&a, &bc);
        let mut rhs = ops::matmul(&a, &b);
        ops::add_assign(&mut rhs, &ops::matmul(&a, &c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn transposed_products_are_consistent(seed in 0u64..1000) {
        let mut rng = Rng64::seed_from(seed);
        let a = rng.uniform_matrix(4, 6, -1.0, 1.0);
        let b = rng.uniform_matrix(4, 5, -1.0, 1.0);
        let fast = ops::matmul_at_b(&a, &b);
        let slow = ops::matmul(&a.transpose(), &b);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn row_argmax_points_at_max(m in matrix_strategy(10)) {
        for (r, &idx) in reduce::row_argmax(&m).iter().enumerate() {
            let row = m.row(r);
            for &v in row {
                prop_assert!(row[idx] >= v);
            }
        }
    }

    // ---- wire codec ---------------------------------------------------------

    #[test]
    fn f32_vecs_roundtrip(v in proptest::collection::vec(any::<f32>(), 0..256)) {
        let bytes = v.to_bytes();
        let back = Vec::<f32>::from_bytes(&bytes).unwrap();
        prop_assert_eq!(v.len(), back.len());
        for (a, b) in v.iter().zip(&back) {
            prop_assert!(a.to_bits() == b.to_bits());
        }
    }

    #[test]
    fn strings_roundtrip(s in ".{0,64}") {
        let bytes = s.to_string().to_bytes();
        prop_assert_eq!(String::from_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn nested_options_roundtrip(v in proptest::option::of(proptest::option::of(any::<u32>()))) {
        let bytes = v.to_bytes();
        prop_assert_eq!(Option::<Option<u32>>::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn truncation_never_panics(
        v in proptest::collection::vec(any::<u8>(), 0..64),
        cut in 0usize..64
    ) {
        let bytes = vec![v.clone()].to_bytes();
        let cut = cut.min(bytes.len());
        // Must return Err or Ok, never panic.
        let _ = Vec::<Vec<u8>>::from_bytes(&bytes[..cut]);
    }

    // ---- grid topology ------------------------------------------------------

    #[test]
    fn neighbor_relation_is_symmetric_on_cross5(
        rows in 1usize..6,
        cols in 1usize..6
    ) {
        let g = Grid::new(rows, cols, NeighborhoodPattern::Cross5);
        for cell in 0..g.cell_count() {
            for n in g.neighbors(cell) {
                prop_assert!(
                    g.neighbors(n).contains(&cell),
                    "cell {} -> {} not symmetric", cell, n
                );
            }
        }
    }

    #[test]
    fn every_neighbor_is_in_overlap_set(rows in 1usize..5, cols in 1usize..5) {
        let g = Grid::new(rows, cols, NeighborhoodPattern::Cross5);
        for cell in 0..g.cell_count() {
            let overlaps = g.overlapping(cell);
            for n in g.neighbors(cell) {
                prop_assert!(overlaps.contains(&n));
            }
        }
    }

    #[test]
    fn coords_index_roundtrip(rows in 1usize..8, cols in 1usize..8) {
        let g = Grid::new(rows, cols, NeighborhoodPattern::Cross5);
        for cell in 0..g.cell_count() {
            let (r, c) = g.coords(cell);
            prop_assert_eq!(g.index(r as isize, c as isize), cell);
        }
    }

    // ---- mixture weights ----------------------------------------------------

    #[test]
    fn mixture_from_raw_is_normalized(
        raw in proptest::collection::vec(-5.0f32..5.0, 1..10)
    ) {
        let w = MixtureWeights::from_raw(&raw);
        let sum: f32 = w.weights().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(w.weights().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn mixture_mutation_preserves_normalization(
        n in 1usize..8,
        seed in 0u64..500,
        sigma in 0.001f32..0.2
    ) {
        let mut rng = Rng64::seed_from(seed);
        let w = MixtureWeights::uniform(n);
        let m = w.mutate(sigma, &mut rng);
        let sum: f32 = m.weights().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn sampled_components_are_in_range(n in 1usize..8, seed in 0u64..500) {
        let mut rng = Rng64::seed_from(seed);
        let w = MixtureWeights::uniform(n);
        for _ in 0..32 {
            prop_assert!(w.sample_component(&mut rng) < n);
        }
    }

    // ---- network genome -----------------------------------------------------

    #[test]
    fn genome_roundtrip_preserves_network_output(seed in 0u64..500) {
        let mut rng = Rng64::seed_from(seed);
        let net = Mlp::from_dims(&[3, 6, 2], Activation::Tanh, Activation::Identity, &mut rng);
        let x = rng.uniform_matrix(4, 3, -1.0, 1.0);
        let y = net.forward(&x);
        let genome = net.genome();
        let mut other =
            Mlp::from_dims(&[3, 6, 2], Activation::Tanh, Activation::Identity, &mut rng);
        other.load_genome(&genome);
        prop_assert!(other.forward(&x).max_abs_diff(&y) < 1e-7);
    }

    #[test]
    fn generator_outputs_stay_in_tanh_range(seed in 0u64..200) {
        let mut rng = Rng64::seed_from(seed);
        let cfg = lipizzaner::nn::NetworkConfig::tiny(12);
        let g = lipizzaner::nn::Generator::new(&cfg, &mut rng);
        let samples = g.sample(8, &mut rng);
        prop_assert!(samples.as_slice().iter().all(|v| v.abs() <= 1.0));
    }
}
