//! Property-based tests (proptest) over the workspace's core data
//! structures and invariants.

use lipizzaner::core::{
    CellSnapshot, CellState, Grid, Individual, MixtureWeights, NeighborhoodPattern, TrainConfig,
};
use lipizzaner::data::BatchLoaderState;
use lipizzaner::mpi::comm::Fabric;
use lipizzaner::mpi::wire::Wire;
use lipizzaner::mpi::{FaultPlan, Universe};
use lipizzaner::nn::{Activation, AdamState, GanLoss, Mlp};
use lipizzaner::runtime::checkpoint;
use lipizzaner::runtime::checkpoint::CellStateMsg;
use lipizzaner::tensor::{ops, reduce, Matrix, Rng64, Rng64State};
use proptest::prelude::*;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- tensor algebra ---------------------------------------------------

    #[test]
    fn transpose_is_involutive(m in matrix_strategy(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_addition(
        seed in 0u64..1000,
        (m, k, n) in (1usize..6, 1usize..6, 1usize..6)
    ) {
        let mut rng = Rng64::seed_from(seed);
        let a = rng.uniform_matrix(m, k, -2.0, 2.0);
        let b = rng.uniform_matrix(k, n, -2.0, 2.0);
        let c = rng.uniform_matrix(k, n, -2.0, 2.0);
        // A(B + C) == AB + AC up to f32 rounding.
        let bc = ops::try_add(&b, &c).unwrap();
        let lhs = ops::matmul(&a, &bc);
        let mut rhs = ops::matmul(&a, &b);
        ops::add_assign(&mut rhs, &ops::matmul(&a, &c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn transposed_products_are_consistent(seed in 0u64..1000) {
        let mut rng = Rng64::seed_from(seed);
        let a = rng.uniform_matrix(4, 6, -1.0, 1.0);
        let b = rng.uniform_matrix(4, 5, -1.0, 1.0);
        let fast = ops::matmul_at_b(&a, &b);
        let slow = ops::matmul(&a.transpose(), &b);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn row_argmax_points_at_max(m in matrix_strategy(10)) {
        for (r, &idx) in reduce::row_argmax(&m).iter().enumerate() {
            let row = m.row(r);
            for &v in row {
                prop_assert!(row[idx] >= v);
            }
        }
    }

    // ---- wire codec ---------------------------------------------------------

    #[test]
    fn f32_vecs_roundtrip(v in proptest::collection::vec(any::<f32>(), 0..256)) {
        let bytes = v.to_bytes();
        let back = Vec::<f32>::from_bytes(&bytes).unwrap();
        prop_assert_eq!(v.len(), back.len());
        for (a, b) in v.iter().zip(&back) {
            prop_assert!(a.to_bits() == b.to_bits());
        }
    }

    #[test]
    fn strings_roundtrip(s in ".{0,64}") {
        let bytes = s.to_string().to_bytes();
        prop_assert_eq!(String::from_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn nested_options_roundtrip(v in proptest::option::of(proptest::option::of(any::<u32>()))) {
        let bytes = v.to_bytes();
        prop_assert_eq!(Option::<Option<u32>>::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn truncation_never_panics(
        v in proptest::collection::vec(any::<u8>(), 0..64),
        cut in 0usize..64
    ) {
        let bytes = vec![v.clone()].to_bytes();
        let cut = cut.min(bytes.len());
        // Must return Err or Ok, never panic.
        let _ = Vec::<Vec<u8>>::from_bytes(&bytes[..cut]);
    }

    // ---- grid topology ------------------------------------------------------

    #[test]
    fn neighbor_relation_is_symmetric_on_cross5(
        rows in 1usize..6,
        cols in 1usize..6
    ) {
        let g = Grid::new(rows, cols, NeighborhoodPattern::Cross5);
        for cell in 0..g.cell_count() {
            for n in g.neighbors(cell) {
                prop_assert!(
                    g.neighbors(n).contains(&cell),
                    "cell {} -> {} not symmetric", cell, n
                );
            }
        }
    }

    #[test]
    fn every_neighbor_is_in_overlap_set(rows in 1usize..5, cols in 1usize..5) {
        let g = Grid::new(rows, cols, NeighborhoodPattern::Cross5);
        for cell in 0..g.cell_count() {
            let overlaps = g.overlapping(cell);
            for n in g.neighbors(cell) {
                prop_assert!(overlaps.contains(&n));
            }
        }
    }

    #[test]
    fn coords_index_roundtrip(rows in 1usize..8, cols in 1usize..8) {
        let g = Grid::new(rows, cols, NeighborhoodPattern::Cross5);
        for cell in 0..g.cell_count() {
            let (r, c) = g.coords(cell);
            prop_assert_eq!(g.index(r as isize, c as isize), cell);
        }
    }

    // ---- mixture weights ----------------------------------------------------

    #[test]
    fn mixture_from_raw_is_normalized(
        raw in proptest::collection::vec(-5.0f32..5.0, 1..10)
    ) {
        let w = MixtureWeights::from_raw(&raw);
        let sum: f32 = w.weights().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(w.weights().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn mixture_mutation_preserves_normalization(
        n in 1usize..8,
        seed in 0u64..500,
        sigma in 0.001f32..0.2
    ) {
        let mut rng = Rng64::seed_from(seed);
        let w = MixtureWeights::uniform(n);
        let m = w.mutate(sigma, &mut rng);
        let sum: f32 = m.weights().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn sampled_components_are_in_range(n in 1usize..8, seed in 0u64..500) {
        let mut rng = Rng64::seed_from(seed);
        let w = MixtureWeights::uniform(n);
        for _ in 0..32 {
            prop_assert!(w.sample_component(&mut rng) < n);
        }
    }

    // ---- network genome -----------------------------------------------------

    #[test]
    fn genome_roundtrip_preserves_network_output(seed in 0u64..500) {
        let mut rng = Rng64::seed_from(seed);
        let net = Mlp::from_dims(&[3, 6, 2], Activation::Tanh, Activation::Identity, &mut rng);
        let x = rng.uniform_matrix(4, 3, -1.0, 1.0);
        let y = net.forward(&x);
        let genome = net.genome();
        let mut other =
            Mlp::from_dims(&[3, 6, 2], Activation::Tanh, Activation::Identity, &mut rng);
        other.load_genome(genome);
        prop_assert!(other.forward(&x).max_abs_diff(&y) < 1e-7);
    }

    #[test]
    fn generator_outputs_stay_in_tanh_range(seed in 0u64..200) {
        let mut rng = Rng64::seed_from(seed);
        let cfg = lipizzaner::nn::NetworkConfig::tiny(12);
        let g = lipizzaner::nn::Generator::new(&cfg, &mut rng);
        let samples = g.sample(8, &mut rng);
        prop_assert!(samples.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    // ---- checkpoint codec ----------------------------------------------------

    #[test]
    fn checkpoint_encoding_round_trips_arbitrary_states_bit_exactly(
        seed in 0u64..2000,
        pop in 1usize..7,
        gen_len in 1usize..40,
        disc_len in 1usize..40,
        order_len in 1usize..30,
    ) {
        let state = arb_cell_state(seed, pop, gen_len, disc_len, order_len);
        let bytes = CellStateMsg::from(&state).to_bytes();
        let back = CellStateMsg::from_bytes(&bytes)
            .expect("decode")
            .into_state()
            .expect("valid loss ids");
        // Bit-exact: every float compared through its raw bits.
        prop_assert_eq!(state_bits(&back), state_bits(&state));
        prop_assert_eq!(back, state);
    }

    // ---- async exchange pipeline ---------------------------------------------

    #[test]
    fn async_pipeline_is_invariant_to_exchange_jitter(
        delays in proptest::collection::vec(
            (0usize..4, 0usize..4, 1u64..12),
            0..5,
        ),
        iters in 2usize..5,
    ) {
        // The overlapped exchange completes on a background thread, so
        // scheduling jitter moves *when* a generation lands but must never
        // change *what* any iteration consumes: scripted per-link delivery
        // delays (the `delay:` fault grammar end-to-end, including the
        // allgather's root fan-in and broadcast legs) stretch wall time
        // while every rank's folded result stays bit-identical to the
        // undelayed run.
        const RANKS: usize = 4;
        let plan: String = delays
            .iter()
            .filter(|(src, dst, _)| src != dst)
            .map(|(src, dst, ms)| format!("delay:{src}>{dst}:*@0:{ms}"))
            .collect::<Vec<_>>()
            .join(";");
        let reference = async_pipeline_results(Fabric::new(RANKS), iters);
        let jittered = async_pipeline_results(
            Fabric::with_faults(RANKS, FaultPlan::parse(&plan).expect("delay plan")),
            iters,
        );
        prop_assert_eq!(jittered, reference);
    }

    #[test]
    fn corrupted_checkpoint_files_fail_loudly_never_partially(
        seed in 0u64..500,
        cut in 1usize..512,
        flip_pos in 0usize..512,
        flip_mask in 1u8..=255,
    ) {
        let cfg = TrainConfig::smoke(2);
        let dir = std::env::temp_dir().join("lipiz_properties_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let mut engine = lipizzaner::core::CellEngine::new(0, &cfg, {
            let mut rng = Rng64::seed_from(cfg.training.data_seed);
            rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
        });
        let state = engine.capture_state();
        let path = checkpoint::write_cell_state(&dir, &state).expect("write");
        let original = std::fs::read(&path).unwrap();
        // The intact file reads back exactly (control).
        prop_assert_eq!(&checkpoint::read_cell_state(&path, &cfg).expect("control read"), &state);

        // Truncation at any point must fail with a typed error.
        let cut = cut.min(original.len() - 1);
        let truncated = dir.join(format!("trunc_{seed}.ckpt"));
        std::fs::write(&truncated, &original[..cut]).unwrap();
        prop_assert!(checkpoint::read_cell_state(&truncated, &cfg).is_err());

        // Any single-byte corruption must fail — never a partial restore.
        let mut flipped = original.clone();
        let pos = flip_pos % flipped.len();
        flipped[pos] ^= flip_mask;
        let corrupt = dir.join(format!("corrupt_{seed}.ckpt"));
        std::fs::write(&corrupt, &flipped).unwrap();
        match checkpoint::read_cell_state(&corrupt, &cfg) {
            Err(_) => {}
            Ok(back) => {
                // The flip landed somewhere the frame does not cover only
                // if it decoded to the *identical* state — anything else is
                // a partial restore.
                prop_assert_eq!(back, state.clone(), "corruption restored a different state");
                prop_assert!(false, "a flipped byte must never read back cleanly");
            }
        }
    }
}

/// Run the double-buffered async exchange pipeline on every rank of
/// `fabric` — begin generation `i`, complete it on a background exchange
/// thread, train iteration `i ≥ 1` against generation `i-1` (the runtime's
/// exact shape) — and return each rank's folded state after `iters`
/// iterations.
fn async_pipeline_results(fabric: std::sync::Arc<Fabric>, iters: usize) -> Vec<u64> {
    Universe::run_on(fabric, |comm| {
        let (job_tx, job_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let worker = comm.clone();
        let thread = std::thread::spawn(move || {
            for pending in job_rx {
                if done_tx.send(worker.allgather_bytes_complete(pending)).is_err() {
                    break;
                }
            }
        });
        let mut state: u64 = comm.rank() as u64 + 1;
        let mut ready: Option<Vec<Vec<u8>>> = None;
        for iter in 0..iters {
            job_tx.send(comm.allgather_bytes_split(&state.to_bytes())).expect("worker alive");
            // Generation `iter-1` (bootstrap: generation 0, consumed twice).
            let frame = match ready.take() {
                Some(frame) => frame,
                None => done_rx.recv().expect("worker alive"),
            };
            for part in &frame {
                let v = u64::from_bytes(part).expect("decode contribution");
                state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
            }
            if iter == 0 {
                ready = Some(frame);
            }
        }
        // The final generation stays with the exchange thread, which must
        // still complete it — peers block on it in their own final round.
        drop(job_tx);
        thread.join().expect("exchange worker");
        state
    })
}

/// Deterministically build a structurally arbitrary [`CellState`] (sizes
/// from proptest, contents from a seeded stream, including extreme float
/// bit patterns — everything except NaN, which has no `==`).
fn arb_cell_state(
    seed: u64,
    pop: usize,
    gen_len: usize,
    disc_len: usize,
    order_len: usize,
) -> CellState {
    let mut rng = Rng64::seed_from(seed);
    let f32_bits = |rng: &mut Rng64| -> f32 {
        let v = f32::from_bits(rng.next_u64() as u32);
        if v.is_nan() {
            f32::MIN_POSITIVE
        } else {
            v
        }
    };
    let member = |rng: &mut Rng64, len: usize| Individual {
        genome: (0..len).map(|_| f32_bits(rng)).collect(),
        lr: f32_bits(rng),
        loss: GanLoss::ALL[rng.below(GanLoss::ALL.len())],
        fitness: if rng.chance(0.1) { f64::INFINITY } else { rng.unit_f64() * 1e9 - 5e8 },
    };
    let adam = |rng: &mut Rng64, len: usize| AdamState {
        m: (0..len).map(|_| f32_bits(rng)).collect(),
        v: (0..len).map(|_| f32_bits(rng)).collect(),
        t: rng.next_u64(),
        beta1: f32_bits(rng),
        beta2: f32_bits(rng),
        eps: f32_bits(rng),
    };
    let rng_state = |rng: &mut Rng64| Rng64State {
        words: [rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()],
        spare_gauss: if rng.chance(0.5) { Some(rng.unit_f64() * 8.0 - 4.0) } else { None },
    };
    CellState {
        cell: rng.below(1024),
        iteration: rng.below(1 << 20),
        batch_counter: rng.next_u64(),
        gen_members: (0..pop).map(|_| member(&mut rng, gen_len)).collect(),
        disc_members: (0..pop).map(|_| member(&mut rng, disc_len)).collect(),
        mixture: (0..pop).map(|_| f32_bits(&mut rng)).collect(),
        adam_g: adam(&mut rng, gen_len),
        adam_d: adam(&mut rng, disc_len),
        rng_mutate: rng_state(&mut rng),
        rng_train: rng_state(&mut rng),
        rng_mixture: rng_state(&mut rng),
        loader: BatchLoaderState {
            order: (0..order_len).map(|_| rng.below(1 << 24)).collect(),
            cursor: rng.below(order_len + 1),
            epoch: rng.next_u64(),
            rng: rng_state(&mut rng),
        },
        // Half the states carry an async exchange frame, so the new wire
        // field's encode/decode sees both shapes.
        exchange_frame: if rng.chance(0.5) {
            (0..pop)
                .map(|_| CellSnapshot {
                    cell: rng.below(1024),
                    gen_genome: (0..gen_len).map(|_| f32_bits(&mut rng)).collect(),
                    gen_lr: f32_bits(&mut rng),
                    gen_loss: GanLoss::ALL[rng.below(GanLoss::ALL.len())],
                    gen_fitness: rng.unit_f64() * 1e9 - 5e8,
                    disc_genome: (0..disc_len).map(|_| f32_bits(&mut rng)).collect(),
                    disc_lr: f32_bits(&mut rng),
                    disc_fitness: rng.unit_f64() * 1e9 - 5e8,
                })
                .collect()
        } else {
            Vec::new()
        },
    }
}

/// Every float in a state as raw bits (so `-0.0` vs `0.0` and subnormal
/// drift are caught).
fn state_bits(s: &CellState) -> Vec<u64> {
    let mut bits = Vec::new();
    let member = |m: &Individual, bits: &mut Vec<u64>| {
        bits.extend(m.genome.iter().map(|v| v.to_bits() as u64));
        bits.push(m.lr.to_bits() as u64);
        bits.push(m.fitness.to_bits());
    };
    for m in s.gen_members.iter().chain(&s.disc_members) {
        member(m, &mut bits);
    }
    bits.extend(s.mixture.iter().map(|v| v.to_bits() as u64));
    for a in [&s.adam_g, &s.adam_d] {
        bits.extend(a.m.iter().map(|v| v.to_bits() as u64));
        bits.extend(a.v.iter().map(|v| v.to_bits() as u64));
        bits.push(a.beta1.to_bits() as u64);
        bits.push(a.beta2.to_bits() as u64);
        bits.push(a.eps.to_bits() as u64);
    }
    for r in [&s.rng_mutate, &s.rng_train, &s.rng_mixture, &s.loader.rng] {
        bits.extend(r.words);
        bits.push(r.spare_gauss.map_or(0, f64::to_bits));
    }
    for snap in &s.exchange_frame {
        bits.extend(snap.gen_genome.iter().map(|v| v.to_bits() as u64));
        bits.extend(snap.disc_genome.iter().map(|v| v.to_bits() as u64));
        bits.push(snap.gen_lr.to_bits() as u64);
        bits.push(snap.disc_lr.to_bits() as u64);
        bits.push(snap.gen_fitness.to_bits());
        bits.push(snap.disc_fitness.to_bits());
    }
    bits
}
