//! The tentpole invariant of the workspace/contiguous-parameter rebuild:
//! a **steady-state training iteration performs zero heap allocations**.
//!
//! This binary installs a counting global allocator, warms a cell engine up
//! (first iterations size every recycled buffer: forward caches, delta
//! ping-pong, gradient accumulators, latent/fake/real batches, update-phase
//! fakes and logits, the mixture-ES candidate), then asserts that further
//! iterations allocate nothing at all — through the gather, mutate, train
//! and update-genomes phases, including the per-iteration mixture
//! evolution (`mixture_every = 1` in the smoke config).
//!
//! The binary runs with `harness = false` (see the root `Cargo.toml`): the
//! allocator counter is process-global, and libtest's runner thread lazily
//! allocates its completion-channel context while the test thread is
//! mid-measurement — a scheduler-dependent race that made the assertion
//! flake. Without the harness, the only threads in the process are the
//! ones this file creates, so the measured window is quiet by construction.

use lipizzaner::core::{CellEngine, CellSnapshot, Profiler, TrainConfig};
use lipizzaner::telemetry::Telemetry;
use lipizzaner::tensor::{Matrix, Pool, Rng64};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation request (alloc / alloc_zeroed / realloc) made by
/// any thread in the process; frees are not counted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

fn toy_data(cfg: &TrainConfig) -> Matrix {
    let mut rng = Rng64::seed_from(cfg.training.data_seed);
    rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
}

/// Run `iters` full iterations against fixed neighbor snapshots and return
/// the allocation count observed across them.
fn allocations_over(engine: &mut CellEngine, snaps: &[CellSnapshot], iters: usize) -> u64 {
    let mut prof = Profiler::new();
    let before = allocations();
    for _ in 0..iters {
        engine.run_iteration(snaps, &mut prof);
    }
    allocations() - before
}

/// Like [`allocations_over`], but recording every iteration into an
/// *enabled* telemetry journal (span events + latency histograms).
fn allocations_over_traced(
    engine: &mut CellEngine,
    snaps: &[CellSnapshot],
    iters: usize,
    tel: &mut Telemetry,
) -> u64 {
    let mut prof = Profiler::new();
    let before = allocations();
    for _ in 0..iters {
        engine.run_iteration_with(snaps, &mut prof, tel);
    }
    allocations() - before
}

fn main() {
    steady_state_iteration_allocates_nothing();
    steady_state_with_telemetry_allocates_nothing();
    println!("zero_alloc: steady-state training iterations allocate nothing — ok");
}

fn steady_state_iteration_allocates_nothing() {
    // Slightly larger than the smoke default so every code path (tournament
    // branches, disc-skip cadence, epoch wrap of the batch loader, mixture
    // evolution) runs inside the measured window.
    let mut cfg = TrainConfig::smoke(2);
    cfg.coevolution.iterations = 64; // never reached; engine driven manually
    let data = toy_data(&cfg);

    // --- serial pool: the strict assertion --------------------------------
    let mut engine = CellEngine::new(0, &cfg, data.clone());
    let snaps: Vec<CellSnapshot> = (0..4).map(|_| engine.snapshot()).collect();

    // Warmup sizes every recycled buffer (and crosses a loader epoch).
    let warm = allocations_over(&mut engine, &snaps, 4);
    assert!(warm > 0, "warmup pass should have sized the workspace buffers");

    let steady = allocations_over(&mut engine, &snaps, 6);
    assert_eq!(
        steady, 0,
        "steady-state serial training iterations must perform zero heap allocations"
    );

    // Recycled snapshot capture is allocation-free too.
    let mut snap = engine.snapshot();
    let before = allocations();
    engine.snapshot_into(&mut snap);
    assert_eq!(allocations() - before, 0, "snapshot_into must not allocate");

    // Recycled checkpoint capture: warm once, then allocation-free.
    let mut state = engine.capture_state();
    let before = allocations();
    engine.capture_state_into(&mut state);
    assert_eq!(allocations() - before, 0, "capture_state_into must not allocate");

    // --- pooled engine: dispatch must not allocate either -----------------
    // (Uncapped so the chunked kernel paths actually run on a 1-core CI
    // host; the job hand-off is a condvar wake, not an allocation.)
    let mut pooled = CellEngine::with_pool(0, &cfg, data, Pool::uncapped(2));
    let psnaps: Vec<CellSnapshot> = (0..4).map(|_| pooled.snapshot()).collect();
    allocations_over(&mut pooled, &psnaps, 4);
    let steady = allocations_over(&mut pooled, &psnaps, 6);
    assert_eq!(
        steady, 0,
        "steady-state pooled training iterations must perform zero heap allocations"
    );
}

/// `--telemetry` must keep the invariant: journaling span events into the
/// fixed-capacity ring and feeding the log2 latency histograms is a few
/// stores per phase — the recorder's only allocation is its construction.
fn steady_state_with_telemetry_allocates_nothing() {
    let mut cfg = TrainConfig::smoke(2);
    cfg.coevolution.iterations = 64; // never reached; engine driven manually
    let data = toy_data(&cfg);

    // --- serial, telemetry on --------------------------------------------
    let mut engine = CellEngine::new(0, &cfg, data.clone());
    let snaps: Vec<CellSnapshot> = (0..4).map(|_| engine.snapshot()).collect();
    let mut tel = Telemetry::enabled(1, 64); // small ring: overwrites mid-window
    allocations_over_traced(&mut engine, &snaps, 4, &mut tel);
    let steady = allocations_over_traced(&mut engine, &snaps, 6, &mut tel);
    assert_eq!(
        steady, 0,
        "steady-state iterations with telemetry enabled must perform zero heap allocations"
    );
    assert!(tel.events().count() > 0, "the measured window journaled events");
    assert_eq!(tel.metrics.train_ns.count, 10, "train span per iteration");

    // The overflow path (ring overwrite + dropped counter) is part of the
    // steady state: a 64-slot ring has wrapped by now.
    assert!(tel.dropped() > 0, "ring should have wrapped inside the window");

    // --- pooled, telemetry on --------------------------------------------
    let mut pooled = CellEngine::with_pool(0, &cfg, data, Pool::uncapped(2));
    let psnaps: Vec<CellSnapshot> = (0..4).map(|_| pooled.snapshot()).collect();
    let mut ptel = Telemetry::enabled(1, 64);
    allocations_over_traced(&mut pooled, &psnaps, 4, &mut ptel);
    let steady = allocations_over_traced(&mut pooled, &psnaps, 6, &mut ptel);
    assert_eq!(
        steady, 0,
        "steady-state pooled iterations with telemetry enabled must perform zero heap allocations"
    );
}
