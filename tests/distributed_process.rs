//! The paper's headline claim, end to end: master and slaves as *separate
//! OS processes* exchanging everything over TCP must train exactly the
//! model the single-process drivers do. Each test invokes the compiled
//! `lipizzaner` binary; `launch` spawns one slave child process per grid
//! cell, so a 1×2 run really is three OS processes talking over localhost
//! sockets — and the saved `.lpz` ensembles are compared byte-for-byte.
//!
//! Every child carries a hard deadline: a wedged process fails the test
//! instead of hanging the suite.

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_lipizzaner");
/// Per-invocation deadline; the whole suite stays well under a minute.
const DEADLINE: Duration = Duration::from_secs(45);

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lipiz_distributed_process").join(name);
    std::fs::create_dir_all(&dir).expect("create test workdir");
    dir
}

/// Run the binary with `args`, enforcing the deadline.
fn run(args: &[&str]) -> Output {
    let mut child = Command::new(BIN)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lipizzaner binary");
    let start = Instant::now();
    loop {
        match child.try_wait().expect("poll child") {
            Some(_) => break,
            None if start.elapsed() > DEADLINE => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("`lipizzaner {}` exceeded the {DEADLINE:?} deadline", args.join(" "));
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    let out = child.wait_with_output().expect("collect output");
    assert!(
        out.status.success(),
        "`lipizzaner {}` failed: {}\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

fn read(path: &PathBuf) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn tcp_processes_match_sequential_byte_for_byte() {
    // The acceptance bar: ≥ 2 real slave OS processes over TCP, and the
    // gathered-and-persisted ensemble equals the sequential driver's.
    let dir = workdir("seq_vs_tcp");
    let seq = dir.join("seq.lpz");
    let tcp = dir.join("tcp.lpz");
    let flags = ["--tiny", "--rows", "1", "--cols", "2", "--iterations", "3", "--batches", "2"];

    let mut seq_args = vec!["train", "--driver", "sequential", "--out", seq.to_str().unwrap()];
    seq_args.extend_from_slice(&flags);
    run(&seq_args);

    let mut tcp_args = vec!["launch", "--out", tcp.to_str().unwrap()];
    tcp_args.extend_from_slice(&flags);
    let out = run(&tcp_args);

    // `launch` reports each spawned slave; prove this really was a
    // multi-process run (master + 2 slave OS processes).
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let spawned = stdout.matches("spawned slave pid=").count();
    assert_eq!(spawned, 2, "expected 2 slave processes, saw: {stdout}");
    assert!(stdout.contains("master listening on"), "no TCP listener: {stdout}");

    assert_eq!(read(&seq), read(&tcp), "TCP ensemble differs from sequential");
}

#[test]
fn tcp_processes_match_threaded_and_simulated_drivers() {
    // Close the equivalence square on a 2×2 grid: the 5-OS-process TCP run
    // agrees byte-for-byte with the in-process threaded driver and the
    // virtual-cluster simulator.
    let dir = workdir("all_drivers");
    let flags = ["--tiny", "--grid", "2", "--iterations", "2", "--batches", "2"];
    let runs = [
        ("threaded.lpz", vec!["train", "--driver", "distributed"]),
        ("sim.lpz", vec!["train", "--driver", "cluster-sim"]),
        ("tcp.lpz", vec!["launch"]),
    ];
    let mut blobs = Vec::new();
    for (file, mut args) in runs {
        let path = dir.join(file);
        args.extend_from_slice(&["--out", path.to_str().unwrap()]);
        args.extend_from_slice(&flags);
        run(&args);
        blobs.push((file, read(&path)));
    }
    let (_, reference) = &blobs[0];
    for (file, blob) in &blobs[1..] {
        assert_eq!(blob, reference, "{file} differs from the threaded driver");
    }
}

#[test]
fn manually_started_slaves_join_over_the_connect_flag() {
    // The multi-machine recipe, on one host: a `--no-spawn` master that
    // only listens, plus slave processes started by hand with
    // `slave --connect HOST:PORT`. Sharded data exercises the per-cell
    // partition path — note the slaves get no `--shards` flag: the data
    // layout travels in the wire config, so hand-started slaves cannot
    // disagree with the master. The run must still be byte-identical to
    // the sequential driver.
    let dir = workdir("manual_slaves");
    let seq = dir.join("seq.lpz");
    let tcp = dir.join("tcp.lpz");
    let flags = ["--tiny", "--rows", "2", "--cols", "1", "--iterations", "2", "--batches", "2"];

    let mut seq_args =
        vec!["train", "--driver", "sequential", "--shards", "--out", seq.to_str().unwrap()];
    seq_args.extend_from_slice(&flags);
    run(&seq_args);

    // Master: no self-spawned slaves, OS-assigned port, stdout piped so we
    // can parse the advertised address while it runs.
    let mut master_args =
        vec!["launch", "--no-spawn", "--shards", "--out", tcp.to_str().unwrap()];
    master_args.extend_from_slice(&flags);
    let mut master = Command::new(BIN)
        .args(&master_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn master");
    let addr = {
        use std::io::{BufRead, BufReader};
        let stdout = master.stdout.take().expect("master stdout");
        let mut lines = BufReader::new(stdout).lines();
        let deadline = Instant::now() + DEADLINE;
        loop {
            assert!(Instant::now() < deadline, "master never advertised its address");
            let line = lines.next().expect("master stdout closed early").expect("read line");
            if let Some(rest) = line.strip_prefix("master listening on ") {
                // Keep draining the master's stdout in the background so a
                // full pipe can never stall it.
                std::thread::spawn(move || for _ in lines.by_ref() {});
                break rest.trim().to_string();
            }
        }
    };

    // Hand-start one slave per grid cell (2×1 grid → 2 slaves).
    let slaves: Vec<_> = (0..2)
        .map(|_| {
            Command::new(BIN)
                .args(["slave", "--connect", &addr])
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn manual slave")
        })
        .collect();

    let start = Instant::now();
    for mut child in slaves.into_iter().chain([master]) {
        let status = loop {
            if let Some(s) = child.try_wait().expect("poll child") {
                break s;
            }
            if start.elapsed() > DEADLINE {
                let _ = child.kill();
                panic!("manual-slave run exceeded the {DEADLINE:?} deadline");
            }
            std::thread::sleep(Duration::from_millis(25));
        };
        assert!(status.success(), "a process of the manual run failed");
    }
    assert_eq!(read(&seq), read(&tcp), "manual-slave TCP run differs from sequential");
}

#[test]
fn slave_with_no_master_gives_up_quickly() {
    // Regression: a slave dialing a dead address must exit with failure
    // within its (shrunken-for-test) retry window — never hang the suite.
    let port = {
        // Bind-then-drop to find a port that is currently closed.
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        let p = l.local_addr().expect("probe addr").port();
        drop(l);
        p
    };
    let dead = format!("127.0.0.1:{port}");
    let start = Instant::now();
    let mut child = Command::new(BIN)
        .args(["slave", "--connect", &dead])
        .env("LIPIZ_TCP_RETRY_MS", "300")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dangling slave");
    let status = loop {
        if let Some(s) = child.try_wait().expect("poll dangling slave") {
            break s;
        }
        if start.elapsed() > Duration::from_secs(20) {
            let _ = child.kill();
            panic!("slave with no master did not give up in time");
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(!status.success(), "slave with no master must fail");
}
