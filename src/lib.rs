//! # lipizzaner-rs
//!
//! A from-scratch Rust reproduction of *"Parallel/distributed
//! implementation of cellular training for generative adversarial neural
//! networks"* (Pérez, Nesmachnow, Toutouh, Hemberg, O'Reilly — IEEE
//! IPDPS Workshops / PDCO 2020): the Lipizzaner/Mustangs cellular
//! coevolutionary GAN trainer, parallelized with a master/slave
//! distributed-memory runtime.
//!
//! This crate is the facade: it re-exports the workspace's layers so an
//! application can depend on one crate.
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | numerics | [`tensor`] | matrices, kernels, seeded RNG, worker pool |
//! | networks | [`nn`] | MLPs with manual backprop, GAN losses, Adam |
//! | data | [`data`] | synthetic MNIST-like digits, ring toy set, loaders |
//! | metrics | [`metrics`] | classifier, inception score, FID, coverage |
//! | transport | [`mpi`] | MPI-style message passing: in-process + TCP backends |
//! | algorithm | [`core`] | cellular coevolution, grid, sequential driver |
//! | runtime | [`runtime`] | master/slave protocol, heartbeats, TCP driver |
//! | platform | [`cluster`] | virtual-time Cluster-UY simulator |
//! | observability | [`telemetry`] | event journal, metrics, trace export |
//!
//! # Quickstart
//!
//! ```
//! use lipizzaner::prelude::*;
//!
//! // A tiny end-to-end cellular run (2×2 grid, toy networks).
//! let cfg = TrainConfig::smoke(2);
//! let mut rng = Rng64::seed_from(cfg.training.data_seed);
//! let data = rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9);
//! let mut trainer = SequentialTrainer::new(&cfg, |_| data.clone());
//! let report = trainer.run();
//! assert_eq!(report.cells.len(), 4);
//! ```

pub use lipiz_cluster as cluster;
pub use lipiz_core as core;
pub use lipiz_data as data;
pub use lipiz_metrics as metrics;
pub use lipiz_mpi as mpi;
pub use lipiz_nn as nn;
pub use lipiz_runtime as runtime;
pub use lipiz_telemetry as telemetry;
pub use lipiz_tensor as tensor;

/// The most common imports in one place.
pub mod prelude {
    pub use lipiz_cluster::{ClusterSpec, CommCost, SimulatedCluster, SimulationOptions};
    pub use lipiz_core::sequential::SequentialTrainer;
    pub use lipiz_core::{
        CellEngine, CellSnapshot, EnsembleModel, Grid, LossMode, NeighborhoodPattern, Profiler,
        Routine, TrainConfig, TrainReport, TransportKind,
    };
    pub use lipiz_data::{BatchLoader, DataPartition, RingDataset, SynthDigits};
    pub use lipiz_metrics::ScoreService;
    pub use lipiz_mpi::{TcpFabric, Transport};
    pub use lipiz_nn::{
        Activation, Adam, Discriminator, GanLoss, Generator, Mlp, NetworkConfig,
    };
    pub use lipiz_runtime::driver::{run_tcp_master, run_tcp_slave};
    pub use lipiz_runtime::{run_distributed, DistributedOptions};
    pub use lipiz_telemetry::{chrome_trace, Telemetry, TelemetrySummary};
    pub use lipiz_tensor::{Matrix, Pool, Rng64};
}
