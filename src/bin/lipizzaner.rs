//! `lipizzaner` — command-line front end for cellular GAN training.
//!
//! ```text
//! lipizzaner train --grid 2 --iterations 8 --driver sequential --out model.lpz
//! lipizzaner train --grid 3 --driver distributed --mustangs
//! lipizzaner sample --model model.lpz --count 16 --gallery samples.pgm
//! lipizzaner info  --model model.lpz
//! ```

use lipizzaner::core::persist;
use lipizzaner::data::image;
use lipizzaner::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("sample") => cmd_sample(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        _ => {
            eprintln!(
                "usage: lipizzaner <train|sample|info> [options]\n\
                 \n\
                 train   --grid N --iterations I --batches B --driver sequential|distributed|cluster-sim\n\
                 \u{20}       --mustangs --shards --out FILE.lpz\n\
                 sample  --model FILE.lpz --count N [--gallery FILE.pgm]\n\
                 info    --model FILE.lpz"
            );
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn flag_present(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn cmd_train(args: &[String]) -> ExitCode {
    let grid: usize = flag_value(args, "--grid").and_then(|v| v.parse().ok()).unwrap_or(2);
    let iterations: usize =
        flag_value(args, "--iterations").and_then(|v| v.parse().ok()).unwrap_or(6);
    let batches: usize =
        flag_value(args, "--batches").and_then(|v| v.parse().ok()).unwrap_or(4);
    let driver = flag_value(args, "--driver").unwrap_or("sequential").to_string();
    let out = flag_value(args, "--out").map(PathBuf::from);

    // A laptop-scale digit config (Table I shape, reduced capacity).
    let mut cfg = TrainConfig::smoke(grid);
    cfg.network.latent_dim = 16;
    cfg.network.hidden_layers = 1;
    cfg.network.hidden_units = 48;
    cfg.network.data_dim = lipizzaner::data::IMAGE_DIM;
    cfg.coevolution.iterations = iterations;
    cfg.coevolution.mixture_every = 3;
    cfg.training.batch_size = 32;
    cfg.training.batches_per_iteration = batches;
    cfg.training.dataset_size = 640;
    cfg.training.eval_batch = 64;
    cfg.mutation.initial_lr = 1e-3;
    if flag_present(args, "--mustangs") {
        cfg = cfg.with_mustangs();
    }
    let use_shards = flag_present(args, "--shards");
    let cells = cfg.cells();

    println!(
        "training {grid}x{grid} grid, {iterations} iterations x {batches} batches, driver: {driver}"
    );
    let digits = SynthDigits::generate(cfg.training.dataset_size, cfg.training.data_seed);
    let full = digits.images.clone();
    let make_data = move |cell: usize| -> Matrix {
        if use_shards {
            lipizzaner::data::DataPartition::Shards.slice_for_cell(&full, cells, cell, 0)
        } else {
            full.clone()
        }
    };

    let (report, best_model) = match driver.as_str() {
        "sequential" => {
            let mut t = SequentialTrainer::new(&cfg, make_data);
            let report = t.run();
            let mut ensembles = t.ensembles();
            let best = ensembles.swap_remove(report.best_cell);
            (report, best)
        }
        "cluster-sim" => {
            let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
            let outcome = sim.run(&cfg, make_data);
            // Rebuild the winning ensemble with a sequential pass (the sim
            // reports fitness; ensembles live in its engines).
            let mut t = {
                let digits2 =
                    SynthDigits::generate(cfg.training.dataset_size, cfg.training.data_seed);
                let full2 = digits2.images;
                let cells2 = cfg.cells();
                SequentialTrainer::new(&cfg, move |cell| {
                    if use_shards {
                        lipizzaner::data::DataPartition::Shards
                            .slice_for_cell(&full2, cells2, cell, 0)
                    } else {
                        full2.clone()
                    }
                })
            };
            t.run();
            let mut ensembles = t.ensembles();
            let best = ensembles.swap_remove(outcome.report.best_cell);
            (outcome.report, best)
        }
        "distributed" => {
            let outcome = lipizzaner::runtime::run_distributed(
                &cfg,
                move |cell, cfg| {
                    let digits = SynthDigits::generate(
                        cfg.training.dataset_size,
                        cfg.training.data_seed,
                    );
                    if use_shards {
                        lipizzaner::data::DataPartition::Shards.slice_for_cell(
                            &digits.images,
                            cfg.cells(),
                            cell,
                            0,
                        )
                    } else {
                        digits.images
                    }
                },
                DistributedOptions::default(),
            );
            // Rebuild the winner's ensemble deterministically.
            let digits2 =
                SynthDigits::generate(cfg.training.dataset_size, cfg.training.data_seed);
            let full2 = digits2.images;
            let cells2 = cfg.cells();
            let mut t = SequentialTrainer::new(&cfg, move |cell| {
                if use_shards {
                    lipizzaner::data::DataPartition::Shards
                        .slice_for_cell(&full2, cells2, cell, 0)
                } else {
                    full2.clone()
                }
            });
            t.run();
            let mut ensembles = t.ensembles();
            let best = ensembles.swap_remove(outcome.report.best_cell);
            (outcome.report, best)
        }
        other => {
            eprintln!("unknown driver {other}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "done in {:.2}s ({}), best cell {} with G fitness {:.4}",
        report.wall_seconds,
        report.driver,
        report.best().cell,
        report.best().gen_fitness
    );
    if let Some(path) = out {
        if let Err(e) = persist::save_ensemble(&path, &best_model) {
            eprintln!("failed to save model: {e}");
            return ExitCode::FAILURE;
        }
        println!("saved winning ensemble to {}", path.display());
    }
    ExitCode::SUCCESS
}

fn cmd_sample(args: &[String]) -> ExitCode {
    let Some(model_path) = flag_value(args, "--model") else {
        eprintln!("sample requires --model FILE.lpz");
        return ExitCode::FAILURE;
    };
    let count: usize = flag_value(args, "--count").and_then(|v| v.parse().ok()).unwrap_or(4);
    let model = match persist::load_ensemble(std::path::Path::new(model_path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("failed to load {model_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rng =
        Rng64::seed_from(flag_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42));
    let samples = model.sample(count, &mut rng);
    if model.network.data_dim == lipizzaner::data::IMAGE_DIM {
        println!("{}", image::to_ascii_28(samples.row(0)));
        if let Some(gallery) = flag_value(args, "--gallery") {
            let rows: Vec<&[f32]> = (0..samples.rows()).map(|r| samples.row(r)).collect();
            let cols = (count as f64).sqrt().ceil() as usize;
            if let Err(e) = image::write_pgm(
                std::path::Path::new(gallery),
                &rows,
                lipizzaner::data::IMAGE_SIDE,
                cols.max(1),
            ) {
                eprintln!("failed to write gallery: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {count} samples to {gallery}");
        }
    } else {
        for r in 0..samples.rows().min(8) {
            println!("{:?}", samples.row(r));
        }
    }
    ExitCode::SUCCESS
}

fn cmd_info(args: &[String]) -> ExitCode {
    let Some(model_path) = flag_value(args, "--model") else {
        eprintln!("info requires --model FILE.lpz");
        return ExitCode::FAILURE;
    };
    match persist::load_ensemble(std::path::Path::new(model_path)) {
        Ok(m) => {
            println!("lipizzaner ensemble: {}", model_path);
            println!("  components: {}", m.components());
            println!(
                "  generator: {} -> {}x{} -> {}",
                m.network.latent_dim,
                m.network.hidden_layers,
                m.network.hidden_units,
                m.network.data_dim
            );
            println!("  mixture weights: {:?}", m.weights.weights());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to load {model_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
