//! `lipizzaner` — command-line front end for cellular GAN training.
//!
//! ```text
//! lipizzaner train  --grid 2 --iterations 8 --driver sequential --out model.lpz
//! lipizzaner train  --grid 3 --driver distributed --transport tcp --mustangs
//! lipizzaner launch --rows 1 --cols 2 --out model.lpz     # spawn slaves + master over TCP
//! lipizzaner launch --grid 2 --checkpoint-dir ckpt/       # + elastic recovery on slave death
//! lipizzaner resume --from ckpt/ --out model.lpz          # restart an interrupted run
//! lipizzaner slave  --connect 192.168.0.10:4455           # join a multi-machine run by hand
//! lipizzaner sample --model model.lpz --count 16 --gallery samples.pgm
//! lipizzaner info   --model model.lpz
//! lipizzaner trace  --journals telemetry/ --out trace.json   # Perfetto timeline
//! ```

use lipizzaner::core::{persist, CellState, TransportKind};
use lipizzaner::data::image;
use lipizzaner::mpi::{enable_process_faults, replacement_schedule, FaultPlan};
use lipizzaner::prelude::*;
use lipizzaner::runtime::checkpoint;
use lipizzaner::runtime::checkpoint::CheckpointWriter;
use lipizzaner::runtime::driver::{
    run_tcp_master_elastic, run_tcp_master_monitored, run_tcp_rejoin_slave, run_tcp_slave,
};
use lipizzaner::runtime::master::MasterOutcome;
use std::collections::BTreeMap;
use std::io::Read as _;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::{Arc, Mutex};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("launch") => cmd_launch(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("slave") => cmd_slave(&args[1..]),
        Some("sample") => cmd_sample(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        _ => {
            eprintln!(
                "usage: lipizzaner <train|launch|resume|slave|sample|info|trace> [options]\n\
                 \n\
                 train   --grid N | --rows R --cols C   --iterations I --batches B\n\
                 \u{20}       --driver sequential|distributed|cluster-sim --transport in-process|tcp\n\
                 \u{20}       --mustangs --shards --tiny --out FILE.lpz\n\
                 \u{20}       --exchange sync|async (overlap the neighbor gather with compute;\n\
                 \u{20}       deterministic, trains against the previous round's snapshots)\n\
                 \u{20}       --checkpoint-dir DIR [--checkpoint-every N] [--pause-after K]\n\
                 \u{20}       --telemetry [--telemetry-dir DIR] [--telemetry-ring N]\n\
                 \u{20}       (allocation-free event journal + per-rank metrics; off by default\n\
                 \u{20}       and observational-only — results are byte-identical either way;\n\
                 \u{20}       with --out, a merged run summary lands next to the .lpz)\n\
                 launch  same training flags as train; spawns one slave OS process per grid\n\
                 \u{20}       cell plus a TCP master (--bind HOST:PORT, default 127.0.0.1:0);\n\
                 \u{20}       --no-spawn waits for hand-started slaves instead (multi-machine);\n\
                 \u{20}       with --checkpoint-dir, a heartbeat-dead slave is respawned and the\n\
                 \u{20}       run restored from the last committed checkpoint\n\
                 \u{20}       fault flags: --fault-plan SPEC (kill:R@I;sever:A-B@I;...)\n\
                 \u{20}       --max-stale-iters N (graceful degradation staleness bound)\n\
                 \u{20}       --heartbeat-interval-ms MS --heartbeat-misses N; a scripted kill\n\
                 \u{20}       with a staleness bound is replaced in-flight (no full relaunch)\n\
                 resume  --from DIR   restart an interrupted run from its checkpoint directory\n\
                 \u{20}       (config comes from the manifest; --driver/--transport/--out as train)\n\
                 slave   --connect HOST:PORT   join a master started elsewhere (the data\n\
                 \u{20}       layout, incl. --shards and checkpointing, arrives in the wire config);\n\
                 \u{20}       --rejoin attaches as the in-flight replacement for a dead rank\n\
                 sample  --model FILE.lpz --count N [--gallery FILE.pgm]\n\
                 info    --model FILE.lpz\n\
                 trace   --journals DIR [--out FILE.json]   merge per-rank telemetry\n\
                 \u{20}       journals into a Chrome trace-event timeline (load in Perfetto)"
            );
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn flag_present(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Build the training configuration shared by every driver and transport
/// from the CLI flags. `--tiny` selects the smoke-scale config (uniform toy
/// data) for fast protocol exercises; the default is a laptop-scale digit
/// config (Table I shape, reduced capacity). Non-square grids come from
/// `--rows`/`--cols`, which override `--grid`.
fn cli_config(args: &[String]) -> TrainConfig {
    let grid: usize = flag_value(args, "--grid").and_then(|v| v.parse().ok()).unwrap_or(2);
    let rows: usize = flag_value(args, "--rows").and_then(|v| v.parse().ok()).unwrap_or(grid);
    let cols: usize = flag_value(args, "--cols").and_then(|v| v.parse().ok()).unwrap_or(grid);
    let tiny = flag_present(args, "--tiny");
    let iterations: usize = flag_value(args, "--iterations")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if tiny { 2 } else { 6 });
    let batches: usize = flag_value(args, "--batches")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if tiny { 2 } else { 4 });

    let mut cfg = TrainConfig::smoke(2);
    if !tiny {
        cfg.network.latent_dim = 16;
        cfg.network.hidden_layers = 1;
        cfg.network.hidden_units = 48;
        cfg.network.data_dim = lipizzaner::data::IMAGE_DIM;
        cfg.coevolution.mixture_every = 3;
        cfg.training.batch_size = 32;
        cfg.training.dataset_size = 640;
        cfg.training.eval_batch = 64;
        cfg.mutation.initial_lr = 1e-3;
    }
    cfg.grid.rows = rows;
    cfg.grid.cols = cols;
    cfg.coevolution.iterations = iterations;
    cfg.training.batches_per_iteration = batches;
    cfg.training.shard_data = flag_present(args, "--shards");
    if let Some(mode) = flag_value(args, "--exchange") {
        let mode = mode
            .parse::<lipizzaner::core::ExchangeMode>()
            .unwrap_or_else(|e| fail(&format!("--exchange: {e}")));
        cfg = cfg.with_exchange(mode);
    }
    if flag_present(args, "--mustangs") {
        cfg = cfg.with_mustangs();
    }
    apply_checkpoint_flags(&mut cfg, args);
    apply_fault_flags(&mut cfg, args);
    apply_telemetry_flags(&mut cfg, args);
    cfg
}

/// Telemetry knobs: `--telemetry` arms the per-rank event journal and
/// metrics registry (off by default, and purely observational — the
/// trained weights are byte-identical either way), `--telemetry-dir`
/// picks where the per-rank JSONL journals land (default `telemetry`),
/// and `--telemetry-ring` caps the event ring (0 = default capacity).
/// Like every other behavioral knob it rides the wire config, so remote
/// slaves journal without any local flags.
fn apply_telemetry_flags(cfg: &mut TrainConfig, args: &[String]) {
    if !flag_present(args, "--telemetry") {
        return;
    }
    let dir = flag_value(args, "--telemetry-dir").unwrap_or("telemetry");
    let ring: usize =
        flag_value(args, "--telemetry-ring").and_then(|v| v.parse().ok()).unwrap_or(0);
    *cfg = cfg.clone().with_telemetry(dir, ring);
}

/// Failure-semantics knobs: the scripted fault plan, the staleness bound
/// for graceful grid degradation, and the heartbeat cadence/deadline. Like
/// checkpointing they land in the config, so every rank — including a
/// hand-started slave on another machine — derives identical failure
/// behavior from the wire config alone.
fn apply_fault_flags(cfg: &mut TrainConfig, args: &[String]) {
    let max_stale: Option<usize> =
        flag_value(args, "--max-stale-iters").and_then(|v| v.parse().ok());
    if let Some(plan) = flag_value(args, "--fault-plan") {
        *cfg = cfg.clone().with_fault_plan(plan, max_stale.unwrap_or(1));
    } else if let Some(m) = max_stale {
        cfg.fault.max_stale_iters = m;
    }
    if let Some(interval) =
        flag_value(args, "--heartbeat-interval-ms").and_then(|v| v.parse().ok())
    {
        cfg.fault.heartbeat_interval_ms = interval;
    }
    if let Some(misses) = flag_value(args, "--heartbeat-misses").and_then(|v| v.parse().ok()) {
        cfg.fault.heartbeat_misses = misses;
    }
}

/// The in-flight replacement schedule implied by the config's fault plan,
/// if its earliest kill is replaceable.
fn cli_replacement_schedule(cfg: &TrainConfig) -> Option<lipizzaner::mpi::ReplacementSchedule> {
    let plan = FaultPlan::parse(cfg.fault.plan.as_deref()?).ok()?;
    replacement_schedule(
        &plan,
        cfg.fault.max_stale_iters,
        cfg.checkpoint.every,
        cfg.checkpoint.effective_iterations(cfg.coevolution.iterations),
        cfg.cells(),
    )
}

/// Checkpoint knobs shared by `train`, `launch` and `resume`: cadence, the
/// target directory, and the pause point. They land in the config — not in
/// per-host state — so every rank of a distributed run derives the same
/// checkpoint behavior from the wire config alone.
fn apply_checkpoint_flags(cfg: &mut TrainConfig, args: &[String]) {
    if let Some(dir) = flag_value(args, "--checkpoint-dir") {
        let every: usize =
            flag_value(args, "--checkpoint-every").and_then(|v| v.parse().ok()).unwrap_or(1);
        *cfg = cfg.clone().with_checkpoints(dir, every);
    }
    if let Some(k) = flag_value(args, "--pause-after").and_then(|v| v.parse().ok()) {
        *cfg = cfg.clone().with_pause_after(k);
    }
}

/// Synthesize the full dataset. Every rank — sequential driver, threaded
/// slave, or a slave OS process on another machine — derives the same bytes
/// from the config alone, so the data dimension picks the source:
/// digit-shaped configs use the synthetic digits, anything else the uniform
/// toy set.
fn cli_full_data(cfg: &TrainConfig) -> Matrix {
    if cfg.network.data_dim == lipizzaner::data::IMAGE_DIM {
        SynthDigits::generate(cfg.training.dataset_size, cfg.training.data_seed).images
    } else {
        let mut rng = Rng64::seed_from(cfg.training.data_seed);
        rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
    }
}

/// Carve one cell's view out of the full dataset: its shard when the config
/// says the data is partitioned, a full copy otherwise. The shard switch
/// rides in the wire config, so hand-started slaves on other machines can
/// never disagree with the master about the data layout.
fn cli_slice(full: &Matrix, cfg: &TrainConfig, cell: usize) -> Matrix {
    if cfg.training.shard_data {
        lipizzaner::data::DataPartition::Shards.slice_for_cell(full, cfg.cells(), cell, 0)
    } else {
        full.clone()
    }
}

/// One cell's dataset from scratch (full synthesis + slice) — the per-rank
/// path, where each OS process builds exactly one cell's data anyway.
fn cli_make_data(cell: usize, cfg: &TrainConfig) -> Matrix {
    cli_slice(&cli_full_data(cfg), cfg, cell)
}

fn cmd_train(args: &[String]) -> ExitCode {
    run_training(cli_config(args), args, None)
}

/// `resume --from DIR`: restart an interrupted run. The configuration
/// comes from the directory's manifest (so the resumed run is the *same*
/// run), the start point is the newest committed cut every cell has, and
/// the driver/transport/out flags work exactly like `train`'s.
fn cmd_resume(args: &[String]) -> ExitCode {
    let Some(from) = flag_value(args, "--from") else {
        eprintln!("resume requires --from DIR");
        return ExitCode::FAILURE;
    };
    let dir = Path::new(from);
    let mut cfg = match checkpoint::read_manifest(dir) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("failed to read manifest in {from}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The directory may have been moved since the run was interrupted; the
    // path on *this* invocation wins. A paused run resumes to completion
    // unless a new pause point is given.
    cfg.checkpoint.dir = Some(from.to_string());
    cfg.checkpoint.pause_after = None;
    if let Some(k) = flag_value(args, "--pause-after").and_then(|v| v.parse().ok()) {
        cfg = cfg.with_pause_after(k);
    }
    // The manifest carries the interrupted run's telemetry settings; fresh
    // flags on the resume invocation override them.
    apply_telemetry_flags(&mut cfg, args);
    let resume_from = match checkpoint::latest_consistent_iteration(dir, cfg.cells()) {
        Ok(Some(k)) => k,
        Ok(None) => {
            eprintln!("{from} holds no complete checkpoint cut to resume from");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("failed to scan {from}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("resuming from {from} at iteration {resume_from}");
    run_training(cfg, args, Some(resume_from))
}

/// Shared driver dispatch behind `train` and `resume`.
fn run_training(cfg: TrainConfig, args: &[String], resume_from: Option<usize>) -> ExitCode {
    let driver = flag_value(args, "--driver").unwrap_or("sequential").to_string();
    let transport: TransportKind =
        match flag_value(args, "--transport").unwrap_or("in-process").parse() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
    let out = flag_value(args, "--out").map(PathBuf::from);

    if transport == TransportKind::Tcp && driver != "distributed" {
        eprintln!("--transport tcp requires --driver distributed");
        return ExitCode::FAILURE;
    }
    if cfg.checkpoint.pause_after.is_some() && !cfg.checkpoint.enabled() {
        eprintln!("--pause-after without --checkpoint-dir would lose the run; refusing");
        return ExitCode::FAILURE;
    }

    // A fresh run into a directory still holding a previous run's
    // checkpoints must clear them first: a recovery scan only checks
    // structure, so a structurally compatible stale cut would resurrect
    // the old run's weights as this run's output.
    if cfg.checkpoint.enabled() && resume_from.is_none() {
        let dir = PathBuf::from(cfg.checkpoint.dir.as_deref().expect("enabled has dir"));
        match checkpoint::clear_stale(&dir, None) {
            Ok(0) => {}
            Ok(n) => println!("cleared {n} stale checkpoint file(s) from {}", dir.display()),
            Err(e) => {
                eprintln!("clearing stale checkpoints in {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "training {}x{} grid, {} iterations x {} batches, driver: {driver}",
        cfg.grid.rows,
        cfg.grid.cols,
        cfg.coevolution.iterations,
        cfg.training.batches_per_iteration
    );

    // The in-process drivers restore from the states directly; the TCP
    // driver only forwards the iteration number (each slave process loads
    // its own cell's file).
    let resume_states: Option<Vec<CellState>> = match (resume_from, driver.as_str()) {
        (Some(_), "sequential" | "cluster-sim") => {
            let dir = cfg.checkpoint.dir.clone().expect("resume has a checkpoint dir");
            match checkpoint::load_grid_states(Path::new(&dir), &cfg) {
                Ok((iter, states)) => {
                    println!("restored {} cells at iteration {iter}", states.len());
                    Some(states)
                }
                Err(e) => {
                    eprintln!("failed to restore from {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => None,
    };

    let (report, best_model, telemetry) = match driver.as_str() {
        "sequential" => {
            // Synthesize the dataset once; cells share it (or their shard).
            let full = cli_full_data(&cfg);
            let mut t = sequential_trainer(&cfg, &full, resume_states.as_deref());
            let report = run_sequential_driver(&mut t, &cfg);
            let telemetry = cfg.telemetry.is_enabled().then(|| t.telemetry_summary());
            let mut ensembles = t.ensembles();
            let best = ensembles.swap_remove(report.best_cell);
            (report, best, telemetry)
        }
        "cluster-sim" => {
            let full = cli_full_data(&cfg);
            let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
            let mut outcome = run_sim_driver(&sim, &cfg, &full, resume_states.as_deref());
            let best = if cfg.fault.plan.is_some() {
                // A faulted run degrades: the victim's replacement trains
                // against the frozen death-frame, so only the sim's own
                // engines hold the right genomes.
                outcome.ensembles.swap_remove(outcome.report.best_cell)
            } else {
                // Rebuild the winning ensemble with a sequential pass (the
                // sim reports fitness; ensembles live in its engines).
                // Bit-identical to the sim's own engines — the drivers
                // agree exactly.
                let mut t = sequential_trainer(&cfg, &full, resume_states.as_deref());
                t.run();
                let mut ensembles = t.ensembles();
                ensembles.swap_remove(outcome.report.best_cell)
            };
            // The sim writes its virtual-time journals itself; there is no
            // wire aggregation to merge into a summary.
            (outcome.report, best, None)
        }
        "distributed" => {
            let mut opts = DistributedOptions { resume_from, ..DistributedOptions::default() };
            if cfg.fault.heartbeat_interval_ms > 0 {
                opts.heartbeat_interval =
                    std::time::Duration::from_millis(cfg.fault.heartbeat_interval_ms);
            }
            if cfg.fault.heartbeat_misses > 0 {
                opts.deadline_misses = cfg.fault.heartbeat_misses;
            }
            let outcome = match transport {
                TransportKind::InProcess => {
                    lipizzaner::runtime::run_distributed(&cfg, cli_make_data, opts)
                }
                TransportKind::Tcp => {
                    let spawn_slaves = !flag_present(args, "--no-spawn");
                    match launch_tcp_run(&cfg, flag_value(args, "--bind"), spawn_slaves, opts) {
                        Ok(o) => o,
                        Err(e) => {
                            eprintln!("tcp launch failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            };
            // The winning ensemble arrived in the final gather — no local
            // rebuild; over TCP these genomes really crossed process
            // boundaries.
            let best = outcome.best_ensemble(&cfg);
            let telemetry = outcome.telemetry;
            (outcome.report, best, telemetry)
        }
        other => {
            eprintln!("unknown driver {other}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "done in {:.2}s ({}), best cell {} with G fitness {:.4}",
        report.wall_seconds,
        report.driver,
        report.best().cell,
        report.best().gen_fitness
    );
    if let Some(path) = out {
        if let Err(e) = persist::save_ensemble(&path, &best_model) {
            eprintln!("failed to save model: {e}");
            return ExitCode::FAILURE;
        }
        println!("saved winning ensemble to {}", path.display());
        if cfg.telemetry.is_enabled() {
            let sidecar = PathBuf::from(format!("{}.summary.json", path.display()));
            match write_run_summary(&sidecar, &report, telemetry.as_ref()) {
                Ok(()) => println!("wrote run summary to {}", sidecar.display()),
                Err(e) => {
                    eprintln!("failed to write run summary: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}

/// Persist the run summary next to the `.lpz`: the Table IV profile rows
/// plus the merged telemetry aggregate (hand-emitted JSON — `serde_json`
/// is not in the offline dependency set).
fn write_run_summary(
    path: &Path,
    report: &TrainReport,
    telemetry: Option<&TelemetrySummary>,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push('{');
    let _ = write!(
        out,
        "\"driver\":\"{}\",\"grid\":[{},{}],\"iterations\":{},\"wall_seconds\":{:.6},\"profile\":[",
        report.driver, report.grid.0, report.grid.1, report.iterations, report.wall_seconds
    );
    for (i, row) in report.profile.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"routine\":\"{}\",\"seconds\":{:.9},\"calls\":{}}}",
            row.routine, row.seconds, row.calls
        );
    }
    out.push(']');
    if let Some(t) = telemetry {
        out.push_str(",\"telemetry\":");
        t.write_json(&mut out);
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Whole-grid trainer over the shared dataset — fresh, or restored from
/// captured states.
fn sequential_trainer(
    cfg: &TrainConfig,
    full: &Matrix,
    states: Option<&[CellState]>,
) -> SequentialTrainer {
    match states {
        Some(states) => {
            SequentialTrainer::from_states(cfg, |cell| cli_slice(full, cfg, cell), states)
        }
        None => SequentialTrainer::new(cfg, |cell| cli_slice(full, cfg, cell)),
    }
}

/// Write the run manifest and start the async checkpoint writer (the CLI
/// is the coordinator for the in-process drivers).
fn start_checkpoint_writer(cfg: &TrainConfig) -> CheckpointWriter {
    let dir = PathBuf::from(cfg.checkpoint.dir.as_deref().expect("enabled has dir"));
    checkpoint::write_manifest(&dir, cfg)
        .unwrap_or_else(|e| fail(&format!("writing checkpoint manifest: {e}")));
    CheckpointWriter::to_dir(&dir, cfg.cells())
}

/// Drive the sequential trainer, committing checkpoints on the configured
/// cadence through the async writer.
fn run_sequential_driver(t: &mut SequentialTrainer, cfg: &TrainConfig) -> TrainReport {
    if !cfg.checkpoint.enabled() {
        return t.run();
    }
    let writer = start_checkpoint_writer(cfg);
    let report = t.run_hooked(|iter, engines, frame| {
        if cfg.checkpoint.commits_after(iter) {
            for e in engines.iter_mut() {
                writer.submit(capture_with_frame(&writer, e, frame));
            }
        }
    });
    writer.finish().unwrap_or_else(|e| fail(&format!("checkpoint commit failed: {e}")));
    report
}

/// Drive the virtual cluster, with the same checkpoint semantics as the
/// sequential driver.
fn run_sim_driver(
    sim: &SimulatedCluster,
    cfg: &TrainConfig,
    full: &Matrix,
    resume: Option<&[CellState]>,
) -> lipizzaner::cluster::SimOutcome {
    if !cfg.checkpoint.enabled() {
        return sim.run_resumable(cfg, |cell| cli_slice(full, cfg, cell), resume, |_, _, _| {});
    }
    let writer = start_checkpoint_writer(cfg);
    let outcome = sim.run_resumable(
        cfg,
        |cell| cli_slice(full, cfg, cell),
        resume,
        |iter, engines, frame| {
            if cfg.checkpoint.commits_after(iter) {
                for e in engines.iter_mut() {
                    writer.submit(capture_with_frame(&writer, e, frame));
                }
            }
        },
    );
    writer.finish().unwrap_or_else(|e| fail(&format!("checkpoint commit failed: {e}")));
    outcome
}

/// Capture a cell state through the writer's recycle lane when a spent
/// buffer is available (the double-buffered zero-allocation path the slave
/// uses), falling back to a fresh capture otherwise.
fn capture_recycled(
    writer: &CheckpointWriter,
    e: &mut lipizzaner::core::CellEngine,
) -> CellState {
    match writer.recycled() {
        Some(mut recycled) => {
            e.capture_state_into(&mut recycled);
            recycled
        }
        None => e.capture_state(),
    }
}

/// [`capture_recycled`], then stamp the cut with the exchange frame its
/// next iteration will consume (empty in sync mode — which also clears any
/// stale frame left in a recycled buffer).
fn capture_with_frame(
    writer: &CheckpointWriter,
    e: &mut lipizzaner::core::CellEngine,
    frame: &[CellSnapshot],
) -> CellState {
    let mut state = capture_recycled(writer, e);
    state.exchange_frame.resize_with(frame.len(), CellSnapshot::empty);
    for (dst, src) in state.exchange_frame.iter_mut().zip(frame) {
        dst.copy_from(src);
    }
    state
}

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// `launch`: the one-machine TCP recipe — same flags as `train`, forced
/// onto the distributed driver over the TCP transport. The overrides go
/// *first*: `flag_value` reads the first occurrence, so a stray `--driver`
/// or `--transport` in the user's arguments cannot silently downgrade a
/// launch to an in-process run.
fn cmd_launch(args: &[String]) -> ExitCode {
    let mut forwarded: Vec<String> =
        ["--driver", "distributed", "--transport", "tcp"].map(String::from).to_vec();
    forwarded.extend_from_slice(args);
    cmd_train(&forwarded)
}

/// A spawned slave OS process with its stderr captured so an abnormal
/// death can be reported with its cause (not just a heartbeat timeout).
struct SlaveChild {
    child: Child,
    pid: u32,
    stderr: Arc<Mutex<Vec<u8>>>,
    drain: Option<std::thread::JoinHandle<()>>,
}

impl SlaveChild {
    fn spawn(exe: &Path, master_addr: &str, rejoin: bool) -> std::io::Result<Self> {
        let mut cmd = Command::new(exe);
        // The shard switch, checkpoint settings, and everything else travel
        // in the wire config, so slaves need no data flags.
        cmd.arg("slave").arg("--connect").arg(master_addr);
        if rejoin {
            cmd.arg("--rejoin");
        }
        // Slaves stay quiet on stdout (the master owns the report); stderr
        // is captured so an abnormal death can be reported with its cause.
        cmd.stdout(Stdio::null());
        cmd.stderr(Stdio::piped());
        let mut child = cmd.spawn()?;
        let pid = child.id();
        let stderr = Arc::new(Mutex::new(Vec::new()));
        let drain = child.stderr.take().map(|mut pipe| {
            let sink = Arc::clone(&stderr);
            std::thread::spawn(move || {
                let mut chunk = [0u8; 4096];
                while let Ok(n) = pipe.read(&mut chunk) {
                    if n == 0 {
                        break;
                    }
                    sink.lock().expect("stderr sink").extend_from_slice(&chunk[..n]);
                }
            })
        });
        println!("spawned slave pid={pid}");
        Ok(Self { child, pid, stderr, drain })
    }

    /// Kill a stranded survivor quietly (it is being cleared for a
    /// relaunch — its death is ours, not a failure worth reporting).
    fn kill_quietly(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(handle) = self.drain.take() {
            let _ = handle.join();
        }
    }

    /// Wait for the child; report and return `true` when it died
    /// abnormally, with its captured stderr.
    fn reap_report(mut self) -> bool {
        let status = self.child.wait();
        if let Some(handle) = self.drain.take() {
            let _ = handle.join();
        }
        match status {
            Ok(s) if s.success() => false,
            status => {
                let cause = match status {
                    Ok(s) => format!("exit status {s}"),
                    Err(e) => format!("wait failed: {e}"),
                };
                eprintln!("slave pid={} died abnormally ({cause})", self.pid);
                let captured = self.stderr.lock().expect("stderr sink");
                if !captured.is_empty() {
                    let text = String::from_utf8_lossy(&captured);
                    for line in text.lines().rev().take(12).collect::<Vec<_>>().iter().rev() {
                        eprintln!("  slave pid={} stderr: {line}", self.pid);
                    }
                }
                true
            }
        }
    }

    fn is_dead(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(Some(_)))
    }
}

/// How many consecutive missed heartbeat rounds convict a slave when
/// elastic recovery is armed (~1 s of silence at the default cadence —
/// generous against scheduler noise, fast against a real death).
const ELASTIC_DEADLINE_MISSES: usize = 10;
/// How many recovery relaunches `launch` attempts before giving up.
const MAX_RECOVERY_ATTEMPTS: usize = 5;

/// Run the master over TCP on this process; with `spawn_slaves`, also
/// spawn one slave OS process per grid cell (the one-machine recipe). With
/// `--no-spawn` the master just listens and waits for slaves started by
/// hand — the multi-machine recipe (`lipizzaner slave --connect HOST:PORT`
/// on each worker host).
///
/// **Elastic recovery:** with spawned slaves *and* checkpointing enabled,
/// a slave that misses its heartbeat deadline is declared dead; the master
/// reports the failed rank and the dead process's exit status/stderr,
/// kills the stranded survivors, respawns a full set of slaves (each
/// re-ranks through the ordinary TCP handshake), and reruns from the last
/// committed checkpoint cut — from scratch if none was committed yet.
fn launch_tcp_run(
    cfg: &TrainConfig,
    bind: Option<&str>,
    spawn_slaves: bool,
    base_opts: DistributedOptions,
) -> std::io::Result<MasterOutcome> {
    let elastic = spawn_slaves && cfg.checkpoint.enabled();
    // In-flight replacement: armed when the fault plan scripts a
    // replaceable kill and this process can respawn the victim. The master
    // then replaces just that rank mid-run; full-teardown recovery stays
    // the fallback for everything else.
    let in_flight = spawn_slaves && cli_replacement_schedule(cfg).is_some();
    let mut resume_from = base_opts.resume_from;
    let attempts = if elastic { MAX_RECOVERY_ATTEMPTS } else { 1 };

    // Bound once and cloned per attempt: re-binding an explicit --bind
    // port right after a recovery shutdown fails with EADDRINUSE (the
    // closed connections linger in TIME_WAIT and std sets no
    // SO_REUSEADDR); the original handle keeps the port across relaunches.
    let listener = TcpListener::bind(bind.unwrap_or("127.0.0.1:0"))?;
    let addr = listener.local_addr()?;

    for attempt in 0..attempts {
        println!("master listening on {addr}");

        // Behind a mutex so the in-flight replacer (called from the
        // master's monitoring path) can hand us the replacement child to
        // reap alongside the originals.
        let children: Mutex<Vec<SlaveChild>> = Mutex::new(Vec::new());
        let exe = if spawn_slaves { Some(std::env::current_exe()?) } else { None };
        if let Some(exe) = &exe {
            let mut kids = children.lock().expect("children");
            for _ in 0..cfg.cells() {
                kids.push(SlaveChild::spawn(exe, &addr.to_string(), false)?);
            }
        } else {
            println!("waiting for {} slaves to connect", cfg.cells());
        }

        let opts = DistributedOptions {
            deadline_misses: if cfg.fault.heartbeat_misses > 0 {
                cfg.fault.heartbeat_misses
            } else if elastic || in_flight {
                ELASTIC_DEADLINE_MISSES
            } else {
                0
            },
            resume_from,
            ..base_opts
        };
        let run = if in_flight {
            let addr_str = addr.to_string();
            run_tcp_master_elastic(listener.try_clone()?, cfg, opts, |victim| {
                println!("replacing slave world rank {victim} in-flight");
                let exe = exe.as_ref().expect("in-flight implies spawned slaves");
                let child = SlaveChild::spawn(exe, &addr_str, true)?;
                children.lock().expect("children").push(child);
                Ok(())
            })
        } else {
            run_tcp_master_monitored(listener.try_clone()?, cfg, opts)
        };
        let children = children.into_inner().expect("children");
        let run = match run {
            Ok(run) => run,
            Err(bootstrap_err) => {
                // Bootstrap itself failed (e.g. a slave crashed before
                // connecting and the accept deadline fired): report any
                // casualties and clear the rest — never leak live children.
                for mut child in children {
                    if child.is_dead() {
                        child.reap_report();
                    } else {
                        child.kill_quietly();
                    }
                }
                return Err(bootstrap_err);
            }
        };
        match run {
            Ok(outcome) => {
                if in_flight {
                    print_survivor_counters(&outcome);
                }
                for child in children {
                    child.reap_report();
                }
                return Ok(outcome);
            }
            Err(abort) => {
                eprintln!("run aborted: {abort}");
                // Report the original casualties (already dead before we
                // intervene) with their exit status and stderr, then clear
                // the stranded survivors quietly for the relaunch.
                for mut child in children {
                    if child.is_dead() {
                        child.reap_report();
                    } else {
                        child.kill_quietly();
                    }
                }
                if attempt + 1 == attempts {
                    return Err(std::io::Error::other(format!(
                        "giving up after {attempts} launch attempts: {abort}"
                    )));
                }
                let dir = PathBuf::from(cfg.checkpoint.dir.as_deref().expect("elastic dir"));
                resume_from = checkpoint::latest_consistent_iteration(&dir, cfg.cells())
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                match resume_from {
                    Some(k) => {
                        println!("recovering: respawning slaves, resuming from iteration {k}");
                    }
                    None => println!(
                        "recovering: respawning slaves, restarting from scratch \
                         (no committed checkpoint yet)"
                    ),
                }
            }
        }
    }
    unreachable!("the attempt loop either returns an outcome or errors out")
}

/// After an in-flight replacement run, print each rank's iteration counter
/// as sampled by successive heartbeat rounds. Survivors must never move
/// backwards while the victim is swapped out — the printed sequences make
/// that auditable from the outside (the fault-injection test parses them).
fn print_survivor_counters(outcome: &MasterOutcome) {
    let mut per_rank: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for round in &outcome.heartbeat.rounds {
        for rec in round {
            if !rec.delayed {
                per_rank.entry(rec.slave).or_default().push(rec.iterations_done);
            }
        }
    }
    for (slave, iters) in per_rank {
        let list = iters.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" ");
        println!("survivor rank {slave} iterations: {list}");
    }
}

/// `slave`: join a TCP master, receive the configuration and cell
/// assignment over the wire, train, and ship the results back. With
/// `--rejoin`, attach to an already-running mesh as the in-flight
/// replacement for a dead rank instead of bootstrapping a fresh world.
fn cmd_slave(args: &[String]) -> ExitCode {
    let Some(connect) = flag_value(args, "--connect") else {
        eprintln!("slave requires --connect HOST:PORT");
        return ExitCode::FAILURE;
    };
    // Only real OS-process slaves arm process-level faults (scripted
    // SIGKILLs); in-process thread drivers keep the plan message-level so
    // tests and the single-process drivers never kill the host.
    enable_process_faults();
    let run = if flag_present(args, "--rejoin") {
        run_tcp_rejoin_slave(connect, cli_make_data)
    } else {
        run_tcp_slave(connect, cli_make_data)
    };
    match run {
        Ok(state) => {
            println!("slave finished in state {state:?}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("slave failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_sample(args: &[String]) -> ExitCode {
    let Some(model_path) = flag_value(args, "--model") else {
        eprintln!("sample requires --model FILE.lpz");
        return ExitCode::FAILURE;
    };
    let count: usize = flag_value(args, "--count").and_then(|v| v.parse().ok()).unwrap_or(4);
    let model = match persist::load_ensemble(std::path::Path::new(model_path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("failed to load {model_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rng =
        Rng64::seed_from(flag_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42));
    let samples = model.sample(count, &mut rng);
    if model.network.data_dim == lipizzaner::data::IMAGE_DIM {
        println!("{}", image::to_ascii_28(samples.row(0)));
        if let Some(gallery) = flag_value(args, "--gallery") {
            let rows: Vec<&[f32]> = (0..samples.rows()).map(|r| samples.row(r)).collect();
            let cols = (count as f64).sqrt().ceil() as usize;
            if let Err(e) = image::write_pgm(
                std::path::Path::new(gallery),
                &rows,
                lipizzaner::data::IMAGE_SIDE,
                cols.max(1),
            ) {
                eprintln!("failed to write gallery: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {count} samples to {gallery}");
        }
    } else {
        for r in 0..samples.rows().min(8) {
            println!("{:?}", samples.row(r));
        }
    }
    ExitCode::SUCCESS
}

/// `trace`: merge the per-rank JSONL journals a `--telemetry` run wrote
/// into one Chrome trace-event file — one track per rank — loadable in
/// Perfetto (ui.perfetto.dev) or chrome://tracing.
fn cmd_trace(args: &[String]) -> ExitCode {
    let dir = flag_value(args, "--journals").unwrap_or("telemetry");
    let out = flag_value(args, "--out").unwrap_or("trace.json");
    let journals = match lipizzaner::telemetry::read_journal_dir(Path::new(dir)) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("failed to read journals in {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if journals.is_empty() {
        eprintln!("no *.jsonl journals in {dir} (run with --telemetry first)");
        return ExitCode::FAILURE;
    }
    let events: usize = journals.iter().map(|j| j.events.len()).sum();
    if let Err(e) = std::fs::write(out, chrome_trace(&journals)) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {events} events across {} rank track(s) to {out}", journals.len());
    ExitCode::SUCCESS
}

fn cmd_info(args: &[String]) -> ExitCode {
    let Some(model_path) = flag_value(args, "--model") else {
        eprintln!("info requires --model FILE.lpz");
        return ExitCode::FAILURE;
    };
    match persist::load_ensemble(std::path::Path::new(model_path)) {
        Ok(m) => {
            println!("lipizzaner ensemble: {}", model_path);
            println!("  components: {}", m.components());
            println!(
                "  generator: {} -> {}x{} -> {}",
                m.network.latent_dim,
                m.network.hidden_layers,
                m.network.hidden_units,
                m.network.data_dim
            );
            println!("  mixture weights: {:?}", m.weights.weights());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to load {model_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
