//! `lipizzaner` — command-line front end for cellular GAN training.
//!
//! ```text
//! lipizzaner train  --grid 2 --iterations 8 --driver sequential --out model.lpz
//! lipizzaner train  --grid 3 --driver distributed --transport tcp --mustangs
//! lipizzaner launch --rows 1 --cols 2 --out model.lpz     # spawn slaves + master over TCP
//! lipizzaner slave  --connect 192.168.0.10:4455           # join a multi-machine run by hand
//! lipizzaner sample --model model.lpz --count 16 --gallery samples.pgm
//! lipizzaner info   --model model.lpz
//! ```

use lipizzaner::core::{persist, TransportKind};
use lipizzaner::data::image;
use lipizzaner::prelude::*;
use lipizzaner::runtime::driver::{run_tcp_master, run_tcp_slave};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode, Stdio};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("launch") => cmd_launch(&args[1..]),
        Some("slave") => cmd_slave(&args[1..]),
        Some("sample") => cmd_sample(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        _ => {
            eprintln!(
                "usage: lipizzaner <train|launch|slave|sample|info> [options]\n\
                 \n\
                 train   --grid N | --rows R --cols C   --iterations I --batches B\n\
                 \u{20}       --driver sequential|distributed|cluster-sim --transport in-process|tcp\n\
                 \u{20}       --mustangs --shards --tiny --out FILE.lpz\n\
                 launch  same training flags as train; spawns one slave OS process per grid\n\
                 \u{20}       cell plus a TCP master (--bind HOST:PORT, default 127.0.0.1:0);\n\
                 \u{20}       --no-spawn waits for hand-started slaves instead (multi-machine)\n\
                 slave   --connect HOST:PORT   join a master started elsewhere (the data\n\
                 \u{20}       layout, incl. --shards, arrives in the wire config)\n\
                 sample  --model FILE.lpz --count N [--gallery FILE.pgm]\n\
                 info    --model FILE.lpz"
            );
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn flag_present(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Build the training configuration shared by every driver and transport
/// from the CLI flags. `--tiny` selects the smoke-scale config (uniform toy
/// data) for fast protocol exercises; the default is a laptop-scale digit
/// config (Table I shape, reduced capacity). Non-square grids come from
/// `--rows`/`--cols`, which override `--grid`.
fn cli_config(args: &[String]) -> TrainConfig {
    let grid: usize = flag_value(args, "--grid").and_then(|v| v.parse().ok()).unwrap_or(2);
    let rows: usize = flag_value(args, "--rows").and_then(|v| v.parse().ok()).unwrap_or(grid);
    let cols: usize = flag_value(args, "--cols").and_then(|v| v.parse().ok()).unwrap_or(grid);
    let tiny = flag_present(args, "--tiny");
    let iterations: usize = flag_value(args, "--iterations")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if tiny { 2 } else { 6 });
    let batches: usize = flag_value(args, "--batches")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if tiny { 2 } else { 4 });

    let mut cfg = TrainConfig::smoke(2);
    if !tiny {
        cfg.network.latent_dim = 16;
        cfg.network.hidden_layers = 1;
        cfg.network.hidden_units = 48;
        cfg.network.data_dim = lipizzaner::data::IMAGE_DIM;
        cfg.coevolution.mixture_every = 3;
        cfg.training.batch_size = 32;
        cfg.training.dataset_size = 640;
        cfg.training.eval_batch = 64;
        cfg.mutation.initial_lr = 1e-3;
    }
    cfg.grid.rows = rows;
    cfg.grid.cols = cols;
    cfg.coevolution.iterations = iterations;
    cfg.training.batches_per_iteration = batches;
    cfg.training.shard_data = flag_present(args, "--shards");
    if flag_present(args, "--mustangs") {
        cfg = cfg.with_mustangs();
    }
    cfg
}

/// Synthesize the full dataset. Every rank — sequential driver, threaded
/// slave, or a slave OS process on another machine — derives the same bytes
/// from the config alone, so the data dimension picks the source:
/// digit-shaped configs use the synthetic digits, anything else the uniform
/// toy set.
fn cli_full_data(cfg: &TrainConfig) -> Matrix {
    if cfg.network.data_dim == lipizzaner::data::IMAGE_DIM {
        SynthDigits::generate(cfg.training.dataset_size, cfg.training.data_seed).images
    } else {
        let mut rng = Rng64::seed_from(cfg.training.data_seed);
        rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
    }
}

/// Carve one cell's view out of the full dataset: its shard when the config
/// says the data is partitioned, a full copy otherwise. The shard switch
/// rides in the wire config, so hand-started slaves on other machines can
/// never disagree with the master about the data layout.
fn cli_slice(full: &Matrix, cfg: &TrainConfig, cell: usize) -> Matrix {
    if cfg.training.shard_data {
        lipizzaner::data::DataPartition::Shards.slice_for_cell(full, cfg.cells(), cell, 0)
    } else {
        full.clone()
    }
}

/// One cell's dataset from scratch (full synthesis + slice) — the per-rank
/// path, where each OS process builds exactly one cell's data anyway.
fn cli_make_data(cell: usize, cfg: &TrainConfig) -> Matrix {
    cli_slice(&cli_full_data(cfg), cfg, cell)
}

fn cmd_train(args: &[String]) -> ExitCode {
    let driver = flag_value(args, "--driver").unwrap_or("sequential").to_string();
    let transport: TransportKind =
        match flag_value(args, "--transport").unwrap_or("in-process").parse() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
    let out = flag_value(args, "--out").map(PathBuf::from);
    let cfg = cli_config(args);

    if transport == TransportKind::Tcp && driver != "distributed" {
        eprintln!("--transport tcp requires --driver distributed");
        return ExitCode::FAILURE;
    }

    println!(
        "training {}x{} grid, {} iterations x {} batches, driver: {driver}",
        cfg.grid.rows,
        cfg.grid.cols,
        cfg.coevolution.iterations,
        cfg.training.batches_per_iteration
    );

    let (report, best_model) = match driver.as_str() {
        "sequential" => {
            // Synthesize the dataset once; cells share it (or their shard).
            let full = cli_full_data(&cfg);
            let mut t = SequentialTrainer::new(&cfg, |cell| cli_slice(&full, &cfg, cell));
            let report = t.run();
            let mut ensembles = t.ensembles();
            let best = ensembles.swap_remove(report.best_cell);
            (report, best)
        }
        "cluster-sim" => {
            let full = cli_full_data(&cfg);
            let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
            let outcome = sim.run(&cfg, |cell| cli_slice(&full, &cfg, cell));
            // Rebuild the winning ensemble with a sequential pass (the sim
            // reports fitness; ensembles live in its engines). Bit-identical
            // to the sim's own engines — the drivers agree exactly.
            let mut t = SequentialTrainer::new(&cfg, |cell| cli_slice(&full, &cfg, cell));
            t.run();
            let mut ensembles = t.ensembles();
            let best = ensembles.swap_remove(outcome.report.best_cell);
            (outcome.report, best)
        }
        "distributed" => {
            let outcome = match transport {
                TransportKind::InProcess => lipizzaner::runtime::run_distributed(
                    &cfg,
                    cli_make_data,
                    DistributedOptions::default(),
                ),
                TransportKind::Tcp => {
                    let spawn_slaves = !flag_present(args, "--no-spawn");
                    match launch_tcp_run(&cfg, flag_value(args, "--bind"), spawn_slaves) {
                        Ok(o) => o,
                        Err(e) => {
                            eprintln!("tcp launch failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            };
            // The winning ensemble arrived in the final gather — no local
            // rebuild; over TCP these genomes really crossed process
            // boundaries.
            let best = outcome.best_ensemble(&cfg);
            (outcome.report, best)
        }
        other => {
            eprintln!("unknown driver {other}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "done in {:.2}s ({}), best cell {} with G fitness {:.4}",
        report.wall_seconds,
        report.driver,
        report.best().cell,
        report.best().gen_fitness
    );
    if let Some(path) = out {
        if let Err(e) = persist::save_ensemble(&path, &best_model) {
            eprintln!("failed to save model: {e}");
            return ExitCode::FAILURE;
        }
        println!("saved winning ensemble to {}", path.display());
    }
    ExitCode::SUCCESS
}

/// `launch`: the one-machine TCP recipe — same flags as `train`, forced
/// onto the distributed driver over the TCP transport. The overrides go
/// *first*: `flag_value` reads the first occurrence, so a stray `--driver`
/// or `--transport` in the user's arguments cannot silently downgrade a
/// launch to an in-process run.
fn cmd_launch(args: &[String]) -> ExitCode {
    let mut forwarded: Vec<String> =
        ["--driver", "distributed", "--transport", "tcp"].map(String::from).to_vec();
    forwarded.extend_from_slice(args);
    cmd_train(&forwarded)
}

/// Run the master over TCP on this process; with `spawn_slaves`, also
/// spawn one slave OS process per grid cell (the one-machine recipe). With
/// `--no-spawn` the master just listens and waits for slaves started by
/// hand — the multi-machine recipe (`lipizzaner slave --connect HOST:PORT`
/// on each worker host).
fn launch_tcp_run(
    cfg: &TrainConfig,
    bind: Option<&str>,
    spawn_slaves: bool,
) -> std::io::Result<lipizzaner::runtime::master::MasterOutcome> {
    let listener = TcpListener::bind(bind.unwrap_or("127.0.0.1:0"))?;
    let addr = listener.local_addr()?;
    println!("master listening on {addr}");

    let mut children: Vec<Child> = Vec::new();
    if spawn_slaves {
        let exe = std::env::current_exe()?;
        for _ in 0..cfg.cells() {
            let mut cmd = Command::new(&exe);
            // The shard switch (and everything else) travels in the wire
            // config, so slaves need no data flags.
            cmd.arg("slave").arg("--connect").arg(addr.to_string());
            // Slaves stay quiet on stdout (the master owns the report);
            // their stderr passes through so failures surface.
            cmd.stdout(Stdio::null());
            let child = cmd.spawn()?;
            println!("spawned slave pid={}", child.id());
            children.push(child);
        }
    } else {
        println!("waiting for {} slaves to connect", cfg.cells());
    }

    let outcome = run_tcp_master(listener, cfg, DistributedOptions::default());
    for mut child in children {
        let _ = child.wait();
    }
    outcome
}

/// `slave`: join a TCP master, receive the configuration and cell
/// assignment over the wire, train, and ship the results back.
fn cmd_slave(args: &[String]) -> ExitCode {
    let Some(connect) = flag_value(args, "--connect") else {
        eprintln!("slave requires --connect HOST:PORT");
        return ExitCode::FAILURE;
    };
    match run_tcp_slave(connect, cli_make_data) {
        Ok(state) => {
            println!("slave finished in state {state:?}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("slave failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_sample(args: &[String]) -> ExitCode {
    let Some(model_path) = flag_value(args, "--model") else {
        eprintln!("sample requires --model FILE.lpz");
        return ExitCode::FAILURE;
    };
    let count: usize = flag_value(args, "--count").and_then(|v| v.parse().ok()).unwrap_or(4);
    let model = match persist::load_ensemble(std::path::Path::new(model_path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("failed to load {model_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rng =
        Rng64::seed_from(flag_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42));
    let samples = model.sample(count, &mut rng);
    if model.network.data_dim == lipizzaner::data::IMAGE_DIM {
        println!("{}", image::to_ascii_28(samples.row(0)));
        if let Some(gallery) = flag_value(args, "--gallery") {
            let rows: Vec<&[f32]> = (0..samples.rows()).map(|r| samples.row(r)).collect();
            let cols = (count as f64).sqrt().ceil() as usize;
            if let Err(e) = image::write_pgm(
                std::path::Path::new(gallery),
                &rows,
                lipizzaner::data::IMAGE_SIDE,
                cols.max(1),
            ) {
                eprintln!("failed to write gallery: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {count} samples to {gallery}");
        }
    } else {
        for r in 0..samples.rows().min(8) {
            println!("{:?}", samples.row(r));
        }
    }
    ExitCode::SUCCESS
}

fn cmd_info(args: &[String]) -> ExitCode {
    let Some(model_path) = flag_value(args, "--model") else {
        eprintln!("info requires --model FILE.lpz");
        return ExitCode::FAILURE;
    };
    match persist::load_ensemble(std::path::Path::new(model_path)) {
        Ok(m) => {
            println!("lipizzaner ensemble: {}", model_path);
            println!("  components: {}", m.components());
            println!(
                "  generator: {} -> {}x{} -> {}",
                m.network.latent_dim,
                m.network.hidden_layers,
                m.network.hidden_units,
                m.network.data_dim
            );
            println!("  mixture weights: {:?}", m.weights.weights());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to load {model_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
